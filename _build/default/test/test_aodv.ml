(* Tests for the AODV substrate and its SAODV-style secured variant —
   the comparison protocol for the paper's "translating to other routing
   protocols" discussion. *)

module Prng = Manet_crypto.Prng
module Address = Manet_ipv6.Address
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Aodv = Manetsec.Aodv
module Aodv_adversary = Manetsec.Aodv_adversary
module World = Manetsec.Aodv_world

let stat w name = Stats.get (World.stats w) name

let chain ?(n = 5) ?(secure = false) ?(adversaries = []) ?(seed = 7) () =
  World.create
    {
      World.default_params with
      n;
      seed;
      range = 150.0;
      secure;
      topology = `Chain 100.0;
      adversaries;
    }

let grid ?(secure = false) ?(adversaries = []) ?(seed = 11) () =
  World.create
    {
      World.default_params with
      n = 9;
      seed;
      range = 150.0;
      secure;
      topology = `Grid (3, 100.0);
      adversaries;
    }

(* ------------------------------------------------------------------ *)
(* Hash chain (SAODV hop-count protection)                            *)
(* ------------------------------------------------------------------ *)

let test_hash_chain_accepts_honest_advance () =
  let g = Prng.create ~seed:1 in
  let seed, top = Aodv.Hash_chain.generate g ~max_hops:10 in
  let hash = ref seed in
  for hop = 0 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "hop %d verifies" hop)
      true
      (Aodv.Hash_chain.check ~hash:!hash ~top_hash:top ~max_hops:10 ~hop_count:hop);
    hash := Aodv.Hash_chain.advance !hash
  done

let test_hash_chain_rejects_shrunk_hop_count () =
  (* A relay that advanced the chain cannot claim a smaller hop count:
     that would require inverting H. *)
  let g = Prng.create ~seed:2 in
  let seed, top = Aodv.Hash_chain.generate g ~max_hops:10 in
  let after3 =
    Aodv.Hash_chain.advance (Aodv.Hash_chain.advance (Aodv.Hash_chain.advance seed))
  in
  Alcotest.(check bool) "hop 3 ok" true
    (Aodv.Hash_chain.check ~hash:after3 ~top_hash:top ~max_hops:10 ~hop_count:3);
  Alcotest.(check bool) "claiming hop 1 fails" false
    (Aodv.Hash_chain.check ~hash:after3 ~top_hash:top ~max_hops:10 ~hop_count:1);
  Alcotest.(check bool) "claiming hop 0 fails" false
    (Aodv.Hash_chain.check ~hash:after3 ~top_hash:top ~max_hops:10 ~hop_count:0)

let test_hash_chain_rejects_garbage () =
  let g = Prng.create ~seed:3 in
  let _, top = Aodv.Hash_chain.generate g ~max_hops:10 in
  Alcotest.(check bool) "garbage fails" false
    (Aodv.Hash_chain.check ~hash:(String.make 32 'x') ~top_hash:top ~max_hops:10
       ~hop_count:5);
  Alcotest.(check bool) "out of range hop fails" false
    (Aodv.Hash_chain.check ~hash:top ~top_hash:top ~max_hops:10 ~hop_count:11)

(* ------------------------------------------------------------------ *)
(* Benign routing                                                     *)
(* ------------------------------------------------------------------ *)

let benign secure =
  let w = chain ~secure () in
  World.start_cbr w ~flows:[ (0, 4) ] ~interval:0.5 ~duration:10.0 ();
  World.run w ~until:40.0;
  Alcotest.(check int) "offered" 21 (stat w "data.offered");
  Alcotest.(check (float 0.01)) "delivery" 1.0 (World.delivery_ratio w);
  Alcotest.(check int) "acked" 21 (stat w "data.acked");
  w

let test_aodv_benign_chain () =
  let w = benign false in
  Alcotest.(check int) "no rejects in plain mode" 0 (stat w "aodv.rrep_rejected")

let test_saodv_benign_chain () =
  let w = benign true in
  Alcotest.(check int) "nothing rejected" 0 (stat w "aodv.rrep_rejected");
  Alcotest.(check int) "no chain rejects" 0 (stat w "aodv.hash_chain_rejected")

let test_aodv_routes_installed_hop_by_hop () =
  let w = chain () in
  World.send w ~src:0 ~dst:4 ();
  World.run w ~until:20.0;
  (* Every intermediate node holds a next-hop entry toward 4, pointing
     one link down the chain. *)
  for i = 0 to 3 do
    match Aodv.next_hop (World.agent w i) ~dst:(World.address_of w 4) with
    | Some next ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d forwards to %d" i (i + 1))
          true
          (Address.equal next (World.address_of w (i + 1)))
    | None -> Alcotest.failf "node %d has no route" i
  done

let test_aodv_reroutes_after_break () =
  let w = grid () in
  World.start_cbr w ~flows:[ (0, 8) ] ~interval:0.5 ~duration:20.0 ();
  World.run w ~until:5.0;
  Manet_sim.Net.set_down (Aodv.net (World.agent w 4)) 4 true;
  World.run w ~until:60.0;
  Alcotest.(check bool)
    (Printf.sprintf "recovers around the dead centre (%.2f)" (World.delivery_ratio w))
    true
    (World.delivery_ratio w > 0.85)

let test_aodv_rerr_on_midpath_break () =
  (* A break one hop away from the source: the upstream relay must
     report with a RERR (the source-adjacent case is handled by the MAC
     failure alone). *)
  let w = chain ~n:5 () in
  World.start_cbr w ~flows:[ (0, 4) ] ~interval:0.5 ~duration:15.0 ();
  World.run w ~until:5.0;
  Manet_sim.Net.set_down (Aodv.net (World.agent w 2)) 2 true;
  World.run w ~until:60.0;
  Alcotest.(check bool) "rerr sent by the relay" true (stat w "rerr.sent" >= 1);
  Alcotest.(check bool) "packets dropped after the break" true
    (stat w "data.dropped" >= 1)

(* ------------------------------------------------------------------ *)
(* Black hole vs AODV and SAODV                                       *)
(* ------------------------------------------------------------------ *)

let test_blackhole_kills_plain_aodv () =
  let adversaries = [ (4, Aodv_adversary.blackhole) ] in
  let w = grid ~adversaries () in
  World.start_cbr w ~flows:[ (0, 8) ] ~interval:0.5 ~duration:15.0 ();
  World.run w ~until:60.0;
  Alcotest.(check bool) "forged" true (stat w "attack.rrep_forged" >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "delivery collapses (%.2f)" (World.delivery_ratio w))
    true
    (World.delivery_ratio w < 0.5);
  Alcotest.(check bool) "data swallowed" true (stat w "attack.data_dropped" >= 1)

let test_blackhole_foiled_by_saodv () =
  let adversaries = [ (4, Aodv_adversary.blackhole) ] in
  let w = grid ~secure:true ~adversaries () in
  World.start_cbr w ~flows:[ (0, 8) ] ~interval:0.5 ~duration:15.0 ();
  World.run w ~until:60.0;
  Alcotest.(check bool) "forgeries rejected" true
    (stat w "aodv.rrep_rejected" + stat w "aodv.hash_chain_rejected" >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "delivery survives (%.2f)" (World.delivery_ratio w))
    true
    (World.delivery_ratio w > 0.9)

let test_saodv_cannot_name_the_dropper () =
  (* The paper's point: a silent dropper *on a legitimate route* hurts
     SAODV too, and SAODV has no per-hop identity record with which to
     name or avoid it — there is no analogue of secure-DSR's
     hostile_suspected.  A chain makes the dropper's position on the
     route deterministic. *)
  let adversaries = [ (2, Aodv_adversary.silent_dropper) ] in
  let w = chain ~n:5 ~secure:true ~adversaries ~seed:13 () in
  World.start_cbr w ~flows:[ (0, 4); (4, 0) ] ~interval:0.5 ~duration:20.0 ();
  World.run w ~until:80.0;
  Alcotest.(check bool) "dropper did damage" true (stat w "attack.data_dropped" >= 1);
  (* No identification machinery exists: the stat key is never written
     by the AODV agents. *)
  Alcotest.(check int) "no suspicion mechanism" 0 (stat w "secure.hostile_suspected")

let suites =
  [
    ( "aodv.hash_chain",
      [
        Alcotest.test_case "honest advance" `Quick test_hash_chain_accepts_honest_advance;
        Alcotest.test_case "shrink rejected" `Quick test_hash_chain_rejects_shrunk_hop_count;
        Alcotest.test_case "garbage rejected" `Quick test_hash_chain_rejects_garbage;
      ] );
    ( "aodv.routing",
      [
        Alcotest.test_case "aodv benign chain" `Quick test_aodv_benign_chain;
        Alcotest.test_case "saodv benign chain" `Quick test_saodv_benign_chain;
        Alcotest.test_case "hop-by-hop tables" `Quick test_aodv_routes_installed_hop_by_hop;
        Alcotest.test_case "reroute after break" `Quick test_aodv_reroutes_after_break;
        Alcotest.test_case "rerr on mid-path break" `Quick test_aodv_rerr_on_midpath_break;
      ] );
    ( "aodv.attacks",
      [
        Alcotest.test_case "blackhole kills aodv" `Quick test_blackhole_kills_plain_aodv;
        Alcotest.test_case "blackhole foiled by saodv" `Quick test_blackhole_foiled_by_saodv;
        Alcotest.test_case "saodv cannot name dropper" `Quick test_saodv_cannot_name_the_dropper;
      ] );
  ]
