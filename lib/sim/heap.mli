(** A binary min-heap keyed by float priority.

    The event queue of the discrete-event engine.  Entries with equal
    priority pop in insertion order (a monotone sequence number breaks
    ties), which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h p v] inserts [v] with priority [p]. *)

val peek : 'a t -> (float * 'a) option
(** Smallest priority without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest-priority entry. *)

