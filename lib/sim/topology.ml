module Prng = Manet_crypto.Prng

type t = {
  xs : float array;
  ys : float array;
  width : float;
  height : float;
}

let create ~n ~width ~height =
  if n <= 0 then invalid_arg "Topology.create: n <= 0";
  { xs = Array.make n 0.0; ys = Array.make n 0.0; width; height }

let random g ~n ~width ~height =
  let t = create ~n ~width ~height in
  for i = 0 to n - 1 do
    t.xs.(i) <- Prng.float g width;
    t.ys.(i) <- Prng.float g height
  done;
  t

let chain ~n ~spacing =
  let t = create ~n ~width:(float_of_int (n - 1) *. spacing +. 1.0) ~height:1.0 in
  for i = 0 to n - 1 do
    t.xs.(i) <- float_of_int i *. spacing
  done;
  t

let grid ~rows ~cols ~spacing =
  let n = rows * cols in
  let t =
    create ~n
      ~width:(float_of_int (cols - 1) *. spacing +. 1.0)
      ~height:(float_of_int (rows - 1) *. spacing +. 1.0)
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let i = (r * cols) + c in
      t.xs.(i) <- float_of_int c *. spacing;
      t.ys.(i) <- float_of_int r *. spacing
    done
  done;
  t

let size t = Array.length t.xs
let width t = t.width
let height t = t.height
let position t i = (t.xs.(i), t.ys.(i))

let set_position t i (x, y) =
  t.xs.(i) <- x;
  t.ys.(i) <- y

let distance t i j =
  let dx = t.xs.(i) -. t.xs.(j) and dy = t.ys.(i) -. t.ys.(j) in
  sqrt ((dx *. dx) +. (dy *. dy))

let in_range t ~range i j = i <> j && distance t i j <= range

let neighbors t ~range i =
  let n = size t in
  let out = ref [] in
  for j = n - 1 downto 0 do
    if in_range t ~range i j then out := j :: !out
  done;
  !out

let is_connected t ~range =
  let n = size t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  Queue.push 0 queue;
  visited.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    List.iter
      (fun j ->
        if not visited.(j) then begin
          visited.(j) <- true;
          incr count;
          Queue.push j queue
        end)
      (neighbors t ~range i)
  done;
  !count = n

exception
  No_connected_placement of { n : int; range : float; attempts : int }

let () =
  Printexc.register_printer (function
    | No_connected_placement { n; range; attempts } ->
        Some
          (Printf.sprintf
             "Topology.No_connected_placement (n=%d, range=%g, attempts=%d): \
              no connected placement found; enlarge the radio range or \
              shrink the field"
             n range attempts)
    | _ -> None)

let max_placement_attempts = 1000

let random_connected g ~n ~width ~height ~range =
  let rec attempt k =
    if k = 0 then
      raise
        (No_connected_placement { n; range; attempts = max_placement_attempts })
    else begin
      let t = random g ~n ~width ~height in
      if is_connected t ~range then t else attempt (k - 1)
    end
  in
  attempt max_placement_attempts
