module Address = Manet_ipv6.Address
module Cga = Manet_ipv6.Cga
module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Ctx = Manet_proto.Node_ctx
module Identity = Manet_proto.Identity
module Engine = Manet_sim.Engine
module Route_cache = Manet_dsr.Route_cache
module Dsr = Manet_dsr.Dsr
module Obs = Manet_obs.Obs
module Audit = Manet_obs.Audit
module Flood = Manet_obs.Flood

type config = {
  discovery_timeout : float;
  max_discovery_attempts : int;
  use_cache_replies : bool;
  ack_timeout : float;
  max_send_retries : int;
  cache_capacity_per_dst : int;
  flood_jitter : float;
  use_credits : bool;
  probe_on_timeout : bool;
  probe_timeout : float;
  verify_at_destination : bool;
  salvage : bool;
  credit : Credit.config;
}

let default_config =
  {
    discovery_timeout = 1.0;
    max_discovery_attempts = 3;
    use_cache_replies = true;
    ack_timeout = 1.5;
    max_send_retries = 2;
    cache_capacity_per_dst = 4;
    flood_jitter = 0.01;
    use_credits = true;
    probe_on_timeout = true;
    probe_timeout = 1.0;
    verify_at_destination = true;
    salvage = true;
    credit = Credit.default_config;
  }

type endorsement = { e_sig : string; e_pk : string; e_rn : int64; e_seq : int }
(* The destination's [SIP, seq, RR]_DSK over a route this node
   discovered: replayed in CREPs as proof of provenance. *)

type packet = {
  p_dst : Address.t;
  p_size : int;
  p_seq : int;
  p_first_sent : float;
  mutable p_retries : int;
}

type pending_discovery = {
  d_dst : Address.t;
  mutable d_seq : int; (* seq of the current attempt, binds the RREP *)
  mutable d_attempts : int;
  mutable d_resolved : bool;
  d_started : float;
  (* Telemetry: the whole discovery and the current attempt's flood. *)
  mutable d_span : int option;
  mutable d_flood : int option;
}

type probe_session = {
  pr_route : Address.t array;
  pr_replies : bool array;
  pr_packet : packet;
  mutable pr_done : bool;
  pr_span : int; (* secure.probe telemetry span *)
}

type t = {
  ctx : Ctx.t;
  config : config;
  cache : endorsement option Route_cache.t;
  credits : Credit.t;
  mutable rreq_seq : int;
  mutable data_seq : int;
  mutable probe_seq : int;
  pending : (string, pending_discovery) Hashtbl.t;
  queue : (string, packet Queue.t) Hashtbl.t;
  waiters : (string, (Address.t list option -> unit) list ref) Hashtbl.t;
  seen_rreq : (string, unit) Hashtbl.t;
  reply_counts : (string, int) Hashtbl.t; (* replies per request, for route diversity *)
  in_flight : (string, packet) Hashtbl.t;
  seen_data : (string, unit) Hashtbl.t; (* delivered (src, seq): retries must not double-count *)
  last_rreq_seq : (string, int) Hashtbl.t; (* per-source replay window *)
  (* Per-destination memory of our own superseded discovery sequence
     numbers, with the time each stopped being current.  A reply whose
     signature verifies against one of these long after it was retired
     is a definite replay (§4) — an honest sibling can only trail the
     seq bump by a path latency. *)
  old_rrep_seqs : (string, (int * float) list) Hashtbl.t;
  probes : (int, probe_session * int) Hashtbl.t;
  (* Pre-distributed (address, public key) bindings.  The paper's only
     such binding is the DNS server: its well-known address is not a CGA,
     but every host holds its public key before joining, which identifies
     it just as strongly. *)
  trusted : (string, string) Hashtbl.t;
}

let akey = Address.to_bytes
let fkey dst seq = akey dst ^ Codec.u32 seq

let create ?(config = default_config) ?(trusted = []) ctx =
  let trusted_tbl = Hashtbl.create 4 in
  List.iter
    (fun (addr, pk) -> Hashtbl.replace trusted_tbl (Address.to_bytes addr) pk)
    trusted;
  {
    ctx;
    config;
    cache = Route_cache.create ~capacity_per_dst:config.cache_capacity_per_dst ();
    credits = Credit.create ~config:config.credit ();
    rreq_seq = 0;
    data_seq = 0;
    probe_seq = 0;
    pending = Hashtbl.create 16;
    queue = Hashtbl.create 16;
    waiters = Hashtbl.create 8;
    seen_rreq = Hashtbl.create 256;
    reply_counts = Hashtbl.create 64;
    in_flight = Hashtbl.create 32;
    seen_data = Hashtbl.create 64;
    last_rreq_seq = Hashtbl.create 32;
    old_rrep_seqs = Hashtbl.create 16;
    probes = Hashtbl.create 16;
    trusted = trusted_tbl;
  }

let address t = Ctx.address t.ctx
let now t = Ctx.now t.ctx
let obs t = t.ctx.Ctx.obs

(* The RREQ dedup key (sip, seq) doubles as the flood-provenance id;
   secured and plain RREQs share one key space by construction. *)
let floods t = Obs.flood (obs t)
let credits t = t.credits
let identity t = t.ctx.Ctx.identity
let suite t = Ctx.suite t.ctx

let verify t ~pk_bytes ~msg ~signature =
  (suite t).Suite.verify ~pk_bytes ~msg ~signature

type host_check = Host_ok | Bad_binding | Bad_sig

let verify_host_r t ~ip ~pk ~rn ~payload ~signature =
  (* The two checks of §3: the address-to-key binding and the
     challenge/sequence signature.  The binding is the CGA rule for
     ordinary hosts; for pre-distributed identities (the DNS server) it
     is exact equality with the known public key.  The split verdict
     feeds the audit stream: a failed binding is a forged identity
     (Cga_mismatch), a failed signature under a good binding points at
     stale or tampered content. *)
  let binding_ok =
    match Hashtbl.find_opt t.trusted (Address.to_bytes ip) with
    | Some known_pk -> String.equal known_pk pk
    | None ->
        Suite.count_hash (Ctx.suite t.ctx) ~bytes:(String.length pk + 8);
        Cga.verify ip ~pk_bytes:pk ~rn
  in
  if not binding_ok then Bad_binding
  else if verify t ~pk_bytes:pk ~msg:payload ~signature then Host_ok
  else Bad_sig

let verify_host t ~ip ~pk ~rn ~payload ~signature =
  match verify_host_r t ~ip ~pk ~rn ~payload ~signature with
  | Host_ok -> true
  | Bad_binding | Bad_sig -> false

(* How long an honest sibling reply may trail its discovery attempt's
   supersession before a match against the retired seq counts as a
   replay: generous against path latency, far below a replayer's
   capture-to-reuse gap. *)
let stale_seq_grace = 3.0

let note_superseded_seq t ~dst ~seq =
  if seq > 0 then begin
    let k = akey dst in
    let prior = Option.value ~default:[] (Hashtbl.find_opt t.old_rrep_seqs k) in
    let keep l = if List.length l > 8 then List.filteri (fun i _ -> i < 8) l else l in
    Hashtbl.replace t.old_rrep_seqs k (keep ((seq, now t) :: prior))
  end

(* Does [payload_for seq_old] verify for any retired seq of [dst]?
   Returns the retirement age when it does.  Only consulted on already
   rejected replies, so the extra verifications stay off every honest
   path. *)
let match_retired_seq t ~dst ~pk ~signature ~payload_for =
  match Hashtbl.find_opt t.old_rrep_seqs (akey dst) with
  | None -> None
  | Some seqs ->
      List.find_map
        (fun (seq, retired_at) ->
          if verify t ~pk_bytes:pk ~msg:(payload_for ~seq) ~signature then
            Some (now t -. retired_at)
          else None)
        seqs

let route_score t e =
  let len = float_of_int (List.length e.Route_cache.route) in
  if t.config.use_credits then
    let mc = Credit.min_credit t.credits e.Route_cache.route in
    let mc = if mc = infinity then 1e9 else mc in
    mc -. (0.001 *. len)
  else -.len

let cached_route t ~dst =
  Option.map
    (fun e -> e.Route_cache.route)
    (Route_cache.best t.cache ~dst ~score:(route_score t))

let cached_entry t ~dst = Route_cache.best t.cache ~dst ~score:(route_score t)

let cached_routes t ~dst =
  List.map (fun e -> e.Route_cache.route) (Route_cache.entries t.cache ~dst)

(* --- data transmission ------------------------------------------------ *)

let queue_for t dst =
  let k = akey dst in
  match Hashtbl.find_opt t.queue k with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queue k q;
      q

let rec transmit t packet route =
  let dst = packet.p_dst in
  Hashtbl.replace t.in_flight (fkey dst packet.p_seq) packet;
  let path = route @ [ dst ] in
  let msg =
    Messages.Data
      {
        src = address t;
        dst;
        seq = packet.p_seq;
        route;
        remaining = path;
        payload_size = packet.p_size;
        sent_at = packet.p_first_sent;
      }
  in
  Ctx.send_along t.ctx ~path
    ~on_fail:(fun () ->
      match route with
      | next :: _ ->
          ignore
            (Route_cache.remove_link t.cache ~owner:(address t) ~a:(address t)
               ~b:next)
      | [] -> ignore (Route_cache.remove_route t.cache ~dst ~route))
    msg;
  Engine.schedule t.ctx.Ctx.engine ~label:"secure" ~delay:t.config.ack_timeout
    (fun () -> ack_timeout t packet route)

and ack_timeout t packet route =
  let k = fkey packet.p_dst packet.p_seq in
  match Hashtbl.find_opt t.in_flight k with
  | None -> ()
  | Some p when p != packet -> ()
  | Some _ ->
      Hashtbl.remove t.in_flight k;
      Ctx.stat t.ctx "data.timeout";
      Route_cache.remove_route t.cache ~dst:packet.p_dst ~route;
      if t.config.probe_on_timeout && route <> [] then start_probe t packet route
      else retry_packet t packet

and retry_packet t packet =
  if packet.p_retries < t.config.max_send_retries then begin
    packet.p_retries <- packet.p_retries + 1;
    dispatch t packet
  end
  else Ctx.stat t.ctx "data.dropped"

(* §3.4: traverse the silent route and test the integrity of each host.
   One probe per hop prefix; the first hop that returns no verifiable
   signed reply is the suspect. *)
and start_probe t packet route =
  let hops = Array.of_list route in
  let session =
    {
      pr_route = hops;
      pr_replies = Array.make (Array.length hops) false;
      pr_packet = packet;
      pr_done = false;
      pr_span =
        Obs.start (obs t) ~kind:"secure.probe" ~node:(Ctx.node_id t.ctx)
          ~detail:
            (Printf.sprintf "dst=%s hops=%d"
               (Address.to_string packet.p_dst)
               (Array.length hops))
          ();
    }
  in
  Array.iteri
    (fun i target ->
      t.probe_seq <- t.probe_seq + 1;
      let seq = t.probe_seq in
      Hashtbl.replace t.probes seq (session, i);
      let prefix = Array.to_list (Array.sub hops 0 i) in
      let path = prefix @ [ target ] in
      Ctx.stat t.ctx "probe.sent";
      Ctx.send_along t.ctx ~path
        (Messages.Probe
           { origin = address t; target; seq; route = prefix; remaining = path }))
    hops;
  Engine.schedule t.ctx.Ctx.engine ~label:"secure" ~delay:t.config.probe_timeout
    (fun () ->
      finish_probe t session)

and finish_probe t session =
  if not session.pr_done then begin
    session.pr_done <- true;
    let n = Array.length session.pr_route in
    let rec first_missing i = if i >= n then None else if session.pr_replies.(i) then first_missing (i + 1) else Some i in
    (match first_missing 0 with
    | Some i ->
        let suspect = session.pr_route.(i) in
        Ctx.audit t.ctx ~kind:Audit.Blackhole_probe_result ~subject:suspect
          ~stats:[ "probe.suspect_found"; "secure.hostile_suspected" ]
          ~cause:
            (Printf.sprintf "hop %d of %d silent on probed route to %s" (i + 1)
               n
               (Address.to_string session.pr_packet.p_dst))
          ();
        Obs.note (obs t) session.pr_span ~node:(Ctx.node_id t.ctx)
          ("suspect " ^ Address.to_string suspect);
        Ctx.log t.ctx ~event:"secure.suspect" ~detail:(Address.to_string suspect);
        Credit.slash t.credits suspect;
        ignore (Route_cache.remove_containing t.cache suspect);
        (* The hop before the suspect may be the one silently dropping;
           under credits it simply stops earning until proven useful. *)
        if i > 0 then begin
          let before = session.pr_route.(i - 1) in
          Ctx.audit t.ctx ~kind:Audit.Credit_slash ~subject:before
            ~cause:
              ("predecessor of silent hop " ^ Address.to_string suspect)
            ();
          Credit.slash t.credits before
        end
    | None ->
        (* Every hop answered the probe, yet the destination never acked
           and nobody reported a broken link.  The prime suspect is the
           last hop: it accepted the data and claims a working link to
           the destination (this is also how a one-hop forged route is
           caught — the forger happily proves its own liveness). *)
        if n > 0 then begin
          let suspect = session.pr_route.(n - 1) in
          Ctx.audit t.ctx ~kind:Audit.Blackhole_probe_result ~subject:suspect
            ~stats:[ "probe.last_hop_suspected"; "secure.hostile_suspected" ]
            ~cause:
              (Printf.sprintf
                 "all %d hops answered, destination %s never acked: last hop \
                  claims the dead link"
                 n
                 (Address.to_string session.pr_packet.p_dst))
            ();
          Obs.note (obs t) session.pr_span ~node:(Ctx.node_id t.ctx)
            ("last-hop suspect " ^ Address.to_string suspect);
          Ctx.log t.ctx ~event:"secure.suspect" ~detail:(Address.to_string suspect);
          Credit.slash t.credits suspect;
          ignore (Route_cache.remove_containing t.cache suspect)
        end);
    Obs.finish (obs t) session.pr_span Obs.Ok;
    retry_packet t session.pr_packet
  end

and dispatch t packet =
  match cached_route t ~dst:packet.p_dst with
  | Some route -> transmit t packet route
  | None ->
      Queue.push packet (queue_for t packet.p_dst);
      start_discovery t packet.p_dst

(* --- route discovery --------------------------------------------------- *)

and start_discovery t dst =
  let k = akey dst in
  (* Resolved entries are kept so sibling replies of the same discovery
     can still be verified and cached; a fresh discovery replaces them. *)
  match Hashtbl.find_opt t.pending k with
  | Some d when not d.d_resolved -> ()
  | _ ->
      (match Hashtbl.find_opt t.pending k with
      | Some old -> note_superseded_seq t ~dst ~seq:old.d_seq
      | None -> ());
      let d =
        {
          d_dst = dst;
          d_seq = 0;
          d_attempts = 0;
          d_resolved = false;
          d_started = now t;
          d_span = None;
          d_flood = None;
        }
      in
      d.d_span <-
        Some
          (Obs.start (obs t) ~kind:"route.discovery" ~node:(Ctx.node_id t.ctx)
             ~detail:("dst=" ^ Address.to_string dst)
             ());
      Hashtbl.replace t.pending k d;
      send_rreq t d

and send_rreq t d =
  t.rreq_seq <- t.rreq_seq + 1;
  let seq = t.rreq_seq in
  note_superseded_seq t ~dst:d.d_dst ~seq:d.d_seq;
  d.d_seq <- seq;
  d.d_attempts <- d.d_attempts + 1;
  Ctx.stat t.ctx "route.discoveries";
  let id = identity t in
  let sip = address t in
  let fl =
    Obs.start (obs t) ?parent:d.d_span ~kind:"rreq.flood"
      ~node:(Ctx.node_id t.ctx)
      ~detail:
        (Printf.sprintf "dst=%s attempt=%d"
           (Address.to_string d.d_dst)
           d.d_attempts)
      ()
  in
  d.d_flood <- Some fl;
  Obs.correlate (obs t) (Dsr.rreq_corr ~sip ~seq) fl;
  let sig_ = Identity.sign id (Codec.rreq_source_payload ~sip ~seq) in
  let fk = fkey sip seq in
  Hashtbl.replace t.seen_rreq fk ();
  Flood.originate (floods t) ~kind:Flood.Rreq ~key:fk
    ~node:(Ctx.node_id t.ctx);
  Flood.sent (floods t) ~kind:Flood.Rreq ~key:fk ~node:(Ctx.node_id t.ctx);
  Ctx.broadcast t.ctx
    (Messages.Rreq
       {
         sip;
         dip = d.d_dst;
         seq;
         srr = [];
         sig_;
         spk = Identity.pk_bytes id;
         srn = id.Identity.rn;
       });
  Engine.schedule t.ctx.Ctx.engine ~label:"secure"
    ~delay:t.config.discovery_timeout (fun () ->
      if not d.d_resolved then begin
        Obs.finish (obs t) fl Obs.Timeout;
        if d.d_attempts < t.config.max_discovery_attempts then send_rreq t d
        else discovery_failed t d
      end)

and discovery_failed t d =
  let k = akey d.d_dst in
  d.d_resolved <- true;
  ignore k;
  Ctx.stat t.ctx "route.discovery_failed";
  (match d.d_span with
  | Some id -> Obs.finish (obs t) id Obs.Timeout
  | None -> ());
  (match Hashtbl.find_opt t.queue k with
  | None -> ()
  | Some q ->
      Queue.iter (fun _ -> Ctx.stat t.ctx "data.dropped") q;
      Queue.clear q);
  notify_waiters t d.d_dst None

and notify_waiters t dst result =
  match Hashtbl.find_opt t.waiters (akey dst) with
  | None -> ()
  | Some l ->
      let callbacks = !l in
      Hashtbl.remove t.waiters (akey dst);
      List.iter (fun cb -> cb result) callbacks

and route_found t ~dst ~route ~endorsement =
  let k = akey dst in
  Route_cache.insert t.cache ~dst ~route ~meta:endorsement ~now:(now t);
  (match Hashtbl.find_opt t.pending k with
  | Some d when not d.d_resolved ->
      d.d_resolved <- true;
      (match d.d_flood with
      | Some id -> Obs.finish (obs t) id Obs.Ok
      | None -> ());
      (match d.d_span with
      | Some id -> Obs.finish (obs t) id Obs.Ok
      | None -> ());
      Ctx.observe t.ctx "route.discovery_time" (now t -. d.d_started);
      Ctx.observe t.ctx "route.hops" (float_of_int (List.length route + 1))
  | _ -> ());
  (match Hashtbl.find_opt t.queue k with
  | None -> ()
  | Some q ->
      let packets = List.of_seq (Queue.to_seq q) in
      Queue.clear q;
      List.iter (fun p -> dispatch t p) packets);
  notify_waiters t dst (Some route)

let send t ~dst ?(size = 512) () =
  t.data_seq <- t.data_seq + 1;
  Ctx.stat t.ctx "data.offered";
  dispatch t
    {
      p_dst = dst;
      p_size = size;
      p_seq = t.data_seq;
      p_first_sent = now t;
      p_retries = 0;
    }

let discover t ~dst ~on_route =
  match cached_route t ~dst with
  | Some route -> on_route (Some route)
  | None ->
      let k = akey dst in
      let l =
        match Hashtbl.find_opt t.waiters k with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add t.waiters k l;
            l
      in
      l := on_route :: !l;
      start_discovery t dst

(* --- RREQ handling ------------------------------------------------------ *)

let srr_ips srr = List.map (fun e -> e.Messages.ip) srr

(* §3.3 verification at the destination: source first, then every hop. *)
let verify_rreq t ~sip ~seq ~srr ~sig_ ~spk ~srn =
  let source_ok =
    verify_host t ~ip:sip ~pk:spk ~rn:srn
      ~payload:(Codec.rreq_source_payload ~sip ~seq)
      ~signature:sig_
  in
  if not source_ok then false
  else if not t.config.verify_at_destination then true
  else
    List.for_all
      (fun e ->
        verify_host t ~ip:e.Messages.ip ~pk:e.Messages.pk ~rn:e.Messages.rn
          ~payload:(Codec.srr_entry_payload ~iip:e.Messages.ip ~seq)
          ~signature:e.Messages.sig_)
      srr

let answer_as_destination t ~sip ~seq ~rr =
  Ctx.stat t.ctx "route.replies";
  let o = obs t in
  let sid =
    Obs.start o
      ?parent:(Obs.lookup o (Dsr.rreq_corr ~sip ~seq))
      ~kind:"route.rrep"
      ~node:(Ctx.node_id t.ctx)
      ~detail:("to " ^ Address.to_string sip)
      ()
  in
  Obs.correlate o (Dsr.rrep_corr ~sip ~dip:(address t) ~rr) sid;
  let id = identity t in
  let sig_ = Identity.sign id (Codec.rrep_payload ~sip ~seq ~rr) in
  let back = List.rev rr @ [ sip ] in
  Ctx.send_along t.ctx ~path:back
    (Messages.Rrep
       {
         sip;
         dip = address t;
         rr;
         remaining = back;
         sig_;
         dpk = Identity.pk_bytes id;
         drn = id.Identity.rn;
       })

let answer_from_cache t ~sip ~seq ~dip ~rr entry endo =
  Ctx.stat t.ctx "route.cache_replies";
  let o = obs t in
  let sid =
    Obs.start o
      ?parent:(Obs.lookup o (Dsr.rreq_corr ~sip ~seq))
      ~kind:"route.crep"
      ~node:(Ctx.node_id t.ctx)
      ~detail:("to " ^ Address.to_string sip)
      ()
  in
  Obs.correlate o (Dsr.crep_corr ~cacher:(address t) ~seq) sid;
  let id = identity t in
  let sig_cacher =
    Identity.sign id (Codec.crep_cacher_payload ~requester:sip ~seq ~rr)
  in
  let back = List.rev rr @ [ sip ] in
  Ctx.send_along t.ctx ~path:back
    (Messages.Crep
       {
         requester = sip;
         cacher = address t;
         dip;
         requester_seq = seq;
         cacher_seq = endo.e_seq;
         rr_to_cacher = rr;
         rr_to_dest = entry.Route_cache.route;
         remaining = back;
         sig_cacher;
         cacher_pk = Identity.pk_bytes id;
         cacher_rn = id.Identity.rn;
         sig_dest = endo.e_sig;
         dest_pk = endo.e_pk;
         dest_rn = endo.e_rn;
       })

let fresh_rreq_for_destination t ~sip ~seq =
  (* Monotone per-source sequence numbers close the replay window at the
     destination even across cache resets.  Copies of the *current*
     request (seq equal to the newest seen) are allowed: they arrive over
     distinct paths and earn distinct replies. *)
  match Hashtbl.find_opt t.last_rreq_seq (akey sip) with
  | Some last when seq < last ->
      (* A flood copy can outlive the next discovery's start, so the
         stale request is rejected but nobody stands accused: the radio
         transmitter of a flood copy is just the last honest relay. *)
      Ctx.audit t.ctx ~kind:Audit.Replay_rejected
        ~stats:[ "secure.replayed_rreq" ]
        ~cause:(Printf.sprintf "rreq seq %d behind newest %d" seq last)
        ();
      false
  | _ -> true

(* Like DSR, the destination answers several copies of a request for
   route diversity. *)
let max_replies_per_request = 3

let note_rreq_seq t ~sip ~seq =
  (* Recorded only after the request verified: a forger must not be able
     to burn a victim's sequence space with junk requests. *)
  Hashtbl.replace t.last_rreq_seq (akey sip) seq

let handle_rreq t ~src msg =
  match msg with
  | Messages.Rreq { sip; dip; seq; srr; sig_; spk; srn } ->
      let key = fkey sip seq in
      let me = address t in
      let rr = srr_ips srr in
      Flood.received (floods t) ~kind:Flood.Rreq ~key ~node:(Ctx.node_id t.ctx)
        ~src ~hops:(List.length srr);
      if Address.equal dip me then begin
        (* Destination: every copy is considered (up to the diversity
           bound), each verified independently — a rushed poisoned copy
           must not mask an honest one. *)
        if not (Address.equal sip me || List.exists (Address.equal me) rr) then begin
          let sent = Option.value ~default:0 (Hashtbl.find_opt t.reply_counts key) in
          if sent < max_replies_per_request && fresh_rreq_for_destination t ~sip ~seq
          then begin
            (* Each verified copy — including duplicates of a flood the
               destination already answered — is charged to the flood's
               provenance: this is the duplicate-verification work the
               item-3 cache is meant to eliminate. *)
            Flood.verified (floods t) ~kind:Flood.Rreq ~key
              ~node:(Ctx.node_id t.ctx);
            if verify_rreq t ~sip ~seq ~srr ~sig_ ~spk ~srn then begin
              note_rreq_seq t ~sip ~seq;
              Hashtbl.replace t.reply_counts key (sent + 1);
              answer_as_destination t ~sip ~seq ~rr
            end
            else
              (* The broken link of the signature chain is not
                 localizable from here (any relay may have tampered or
                 appended a forged entry), so no subject. *)
              Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
                ~stats:[ "secure.rreq_rejected" ]
                ~cause:"rreq source or route-record signature chain" ()
          end
        end
      end
      else if Hashtbl.mem t.seen_rreq key then
        Flood.duplicate (floods t) ~kind:Flood.Rreq ~key
      else begin
        Hashtbl.replace t.seen_rreq key ();
        if Address.equal sip me || List.exists (Address.equal me) rr then ()
        else begin
          let cache_answer =
            if t.config.use_cache_replies then
              match cached_entry t ~dst:dip with
              | Some ({ Route_cache.meta = Some endo; _ } as entry)
                when (not (List.exists (Address.equal sip) entry.Route_cache.route))
                     && not
                          (List.exists
                             (fun a -> List.exists (Address.equal a) rr)
                             entry.Route_cache.route) ->
                  Some (entry, endo)
              | _ -> None
            else None
          in
          match cache_answer with
          | Some (entry, endo) -> answer_from_cache t ~sip ~seq ~dip ~rr entry endo
          | None ->
              (match Obs.lookup (obs t) (Dsr.rreq_corr ~sip ~seq) with
              | Some sid ->
                  Obs.note (obs t) sid ~node:(Ctx.node_id t.ctx)
                    ("relay " ^ Address.to_string me)
              | None -> ());
              let id = identity t in
              let entry =
                {
                  Messages.ip = me;
                  sig_ = Identity.sign id (Codec.srr_entry_payload ~iip:me ~seq);
                  pk = Identity.pk_bytes id;
                  rn = id.Identity.rn;
                }
              in
              let relayed =
                Messages.Rreq { sip; dip; seq; srr = srr @ [ entry ]; sig_; spk; srn }
              in
              let delay = Prng.float t.ctx.Ctx.rng t.config.flood_jitter in
              Engine.schedule t.ctx.Ctx.engine ~label:"secure" ~delay (fun () ->
                  Flood.sent (floods t) ~kind:Flood.Rreq ~key
                    ~node:(Ctx.node_id t.ctx);
                  Ctx.broadcast t.ctx relayed)
        end
      end
  | _ -> ()

(* --- replies ------------------------------------------------------------ *)

let consume_rrep t ~src msg =
  match msg with
  | Messages.Rrep { dip; rr; sig_; dpk; drn; _ } -> (
      (* Replies verify against the sequence number of our latest
         discovery for that destination; sibling copies of an
         already-resolved discovery still count (route diversity). *)
      match Hashtbl.find_opt t.pending (akey dip) with
      | Some d ->
          let payload = Codec.rrep_payload ~sip:(address t) ~seq:d.d_seq ~rr in
          let corr = Dsr.rrep_corr ~sip:(address t) ~dip ~rr in
          (match
             verify_host_r t ~ip:dip ~pk:dpk ~rn:drn ~payload ~signature:sig_
           with
          | Host_ok ->
              (match Obs.lookup (obs t) corr with
              | Some sid -> Obs.finish (obs t) sid Obs.Ok
              | None -> ());
              route_found t ~dst:dip ~route:rr
                ~endorsement:
                  (Some { e_sig = sig_; e_pk = dpk; e_rn = drn; e_seq = d.d_seq })
          | (Bad_binding | Bad_sig) as why ->
              (match Obs.lookup (obs t) corr with
              | Some sid ->
                  Obs.finish (obs t) sid (Obs.Rejected "signature check failed")
              | None -> ());
              let stats = [ "secure.rrep_rejected" ] in
              (match why with
              | Bad_binding ->
                  (* The endorsement key does not bind to the claimed
                     destination address: forged identity material.  The
                     forger is not localizable from here — probes and
                     credits take over. *)
                  Ctx.audit t.ctx ~kind:Audit.Cga_mismatch ~subject:dip
                    ~stats ~cause:"rrep endorsement key/address binding" ()
              | Bad_sig | Host_ok -> (
                  match
                    match_retired_seq t ~dst:dip ~pk:dpk ~signature:sig_
                      ~payload_for:(fun ~seq ->
                        Codec.rrep_payload ~sip:(address t) ~seq ~rr)
                  with
                  | Some age when age > stale_seq_grace ->
                      (* A once-valid endorsement bound to a discovery
                         retired long ago: a replay, and whoever radioed
                         it to us either mounted it or relayed a message
                         no honest route carries. *)
                      Ctx.audit t.ctx ~kind:Audit.Replay_rejected
                        ~subject_node:src ~stats
                        ~cause:
                          (Printf.sprintf
                             "rrep bound to seq retired %.1fs ago" age)
                        ()
                  | Some _ ->
                      Ctx.audit t.ctx ~kind:Audit.Replay_rejected ~stats
                        ~cause:"late sibling of a just-superseded attempt"
                        ()
                  | None ->
                      Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail ~stats
                        ~cause:"rrep endorsement signature" ())))
      | None ->
          (* No discovery ever asked for this: unsolicited or replayed,
             so reject (§4). *)
          Ctx.audit t.ctx ~kind:Audit.Replay_rejected
            ~stats:[ "secure.rrep_rejected" ]
            ~cause:"unsolicited rrep" ())
  | _ -> ()

let consume_crep t msg =
  match msg with
  | Messages.Crep
      {
        requester = _;
        cacher;
        dip;
        requester_seq;
        cacher_seq;
        rr_to_cacher;
        rr_to_dest;
        sig_cacher;
        cacher_pk;
        cacher_rn;
        sig_dest;
        dest_pk;
        dest_rn;
        _;
      } -> (
      match Hashtbl.find_opt t.pending (akey dip) with
      | Some d when d.d_seq = requester_seq ->
          let me = address t in
          let cacher_ok =
            verify_host t ~ip:cacher ~pk:cacher_pk ~rn:cacher_rn
              ~payload:
                (Codec.crep_cacher_payload ~requester:me ~seq:requester_seq
                   ~rr:rr_to_cacher)
              ~signature:sig_cacher
          in
          let dest_ok =
            verify_host t ~ip:dip ~pk:dest_pk ~rn:dest_rn
              ~payload:
                (Codec.rrep_payload ~sip:cacher ~seq:cacher_seq ~rr:rr_to_dest)
              ~signature:sig_dest
          in
          let corr = Dsr.crep_corr ~cacher ~seq:requester_seq in
          if cacher_ok && dest_ok then begin
            (match Obs.lookup (obs t) corr with
            | Some sid -> Obs.finish (obs t) sid Obs.Ok
            | None -> ());
            let route = rr_to_cacher @ (cacher :: rr_to_dest) in
            route_found t ~dst:dip ~route ~endorsement:None
          end
          else begin
            (match Obs.lookup (obs t) corr with
            | Some sid ->
                Obs.finish (obs t) sid (Obs.Rejected "signature check failed")
            | None -> ());
            (* Either half may be at fault (cacher attestation or the
               replayed destination endorsement); neither failure
               localizes the forger from here. *)
            Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
              ~stats:[ "secure.crep_rejected" ]
              ~cause:
                (if not cacher_ok then "crep cacher attestation signature"
                 else "crep destination endorsement signature")
              ()
          end
      | _ ->
          Ctx.audit t.ctx ~kind:Audit.Replay_rejected
            ~stats:[ "secure.crep_rejected" ]
            ~cause:"crep for no live discovery attempt" ())
  | _ -> ()

(* --- data plane ---------------------------------------------------------- *)

let split_route_at route me =
  let rec go before = function
    | [] -> None
    | x :: rest when Address.equal x me -> Some (List.rev before, rest)
    | x :: rest -> go (x :: before) rest
  in
  go [] route

(* Salvaging, as in the baseline: push the stuck packet over our own
   cached (verified) route after reporting the break. *)
let try_salvage t msg =
  match msg with
  | Messages.Data ({ dst; _ } as d) when t.config.salvage -> (
      match cached_route t ~dst with
      | Some route
        when not (List.exists (Address.equal (address t)) route) ->
          Ctx.stat t.ctx "data.salvaged";
          let path = route @ [ dst ] in
          Ctx.send_along t.ctx ~path
            (Messages.Data { d with route; remaining = path });
          true
      | _ -> false)
  | _ -> false

let forward_data t ~next msg =
  match msg with
  | Messages.Data { src; route; _ } ->
      Ctx.stat t.ctx "data.forwarded";
      Ctx.send_along t.ctx ~path:next msg ~on_fail:(fun () ->
          let me = address t in
          let id = identity t in
          let broken_next = List.hd next in
          let back =
            match split_route_at route me with
            | Some (before, _) -> List.rev before @ [ src ]
            | None -> [ src ]
          in
          Ctx.stat t.ctx "rerr.sent";
          Ctx.send_along t.ctx ~path:back
            (Messages.Rerr
               {
                 reporter = me;
                 broken_next;
                 dst = src;
                 remaining = back;
                 sig_ =
                   Identity.sign id
                     (Codec.rerr_payload ~reporter:me ~broken_next);
                 pk = Identity.pk_bytes id;
                 rn = id.Identity.rn;
               });
          ignore (try_salvage t msg))
  | _ -> ()

let consume_data t msg =
  match msg with
  | Messages.Data { src; seq; route; sent_at; _ } ->
      (* Retransmissions of an already-delivered packet are re-acked but
         not re-counted. *)
      let k = fkey src seq in
      if not (Hashtbl.mem t.seen_data k) then begin
        Hashtbl.replace t.seen_data k ();
        Ctx.stat t.ctx "data.delivered";
        Ctx.observe t.ctx "data.latency" (now t -. sent_at)
      end;
      let back_route = List.rev route in
      let path = back_route @ [ src ] in
      Ctx.send_along t.ctx ~path
        (Messages.Ack
           {
             src = address t;
             dst = src;
             data_seq = seq;
             route = back_route;
             remaining = path;
             sent_at;
           })
  | _ -> ()

let consume_ack t msg =
  match msg with
  | Messages.Ack { src = acker; data_seq; sent_at; route; _ } -> (
      let k = fkey acker data_seq in
      match Hashtbl.find_opt t.in_flight k with
      | Some _ ->
          Hashtbl.remove t.in_flight k;
          Ctx.stat t.ctx "data.acked";
          Ctx.observe t.ctx "data.rtt" (now t -. sent_at);
          (* §3.4: every relay on the acknowledged route earns credit. *)
          Credit.reward_route t.credits route
      | None -> Ctx.stat t.ctx "ack.unmatched")
  | _ -> ()

let consume_rerr t msg =
  match msg with
  | Messages.Rerr { reporter; broken_next; sig_; pk; rn; _ } ->
      Ctx.stat t.ctx "rerr.received";
      let authentic =
        verify_host t ~ip:reporter ~pk ~rn
          ~payload:(Codec.rerr_payload ~reporter ~broken_next)
          ~signature:sig_
      in
      if not authentic then
        Ctx.audit t.ctx ~kind:Audit.Rerr_rejected
          ~stats:[ "secure.rerr_rejected" ]
          ~cause:"rerr reporter binding or signature" ()
      else begin
        (* Source routing lets us check plausibility: the reported link
           must lie on a route we actually hold. *)
        let removed =
          Route_cache.remove_link t.cache ~owner:(address t) ~a:reporter
            ~b:broken_next
        in
        if removed = 0 then
          Ctx.audit t.ctx ~kind:Audit.Rerr_implausible ~subject:reporter
            ~stats:[ "secure.rerr_implausible" ]
            ~cause:
              ("reported link to "
              ^ Address.to_string broken_next
              ^ " lies on no route we hold")
            ();
        (* Track reporting frequency; §3.4 treats chronic reporters (or
           their successors) as hostile. *)
        if Credit.record_rerr t.credits reporter ~now:(now t) then begin
          Ctx.audit t.ctx ~kind:Audit.Rerr_frequency ~subject:reporter
            ~stats:[ "secure.hostile_suspected" ]
            ~cause:"route-error reporting rate over the hostile threshold" ();
          Credit.slash t.credits reporter;
          ignore (Route_cache.remove_containing t.cache reporter)
        end
      end
  | _ -> ()

(* --- probes --------------------------------------------------------------- *)

let consume_probe t msg =
  match msg with
  | Messages.Probe { origin; target; seq; route; _ } ->
      if Address.equal target (address t) then begin
        let id = identity t in
        let back = List.rev route @ [ origin ] in
        Ctx.send_along t.ctx ~path:back
          (Messages.Probe_reply
             {
               responder = address t;
               origin;
               seq;
               remaining = back;
               sig_ =
                 Identity.sign id
                   (Codec.probe_reply_payload ~responder:(address t) ~origin ~seq);
               pk = Identity.pk_bytes id;
               rn = id.Identity.rn;
             })
      end
  | _ -> ()

let consume_probe_reply t msg =
  match msg with
  | Messages.Probe_reply { responder; origin; seq; sig_; pk; rn; _ } -> (
      match Hashtbl.find_opt t.probes seq with
      | Some (session, i) when not session.pr_done ->
          if
            Address.equal origin (address t)
            && Address.equal responder session.pr_route.(i)
            && verify_host t ~ip:responder ~pk ~rn
                 ~payload:
                   (Codec.probe_reply_payload ~responder ~origin:(address t) ~seq)
                 ~signature:sig_
          then begin
            session.pr_replies.(i) <- true;
            Hashtbl.remove t.probes seq;
            Ctx.stat t.ctx "probe.replied"
          end
          else
            Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
              ~stats:[ "probe.reply_rejected" ]
              ~cause:"probe reply responder binding or signature" ()
      | _ -> ())
  | _ -> ()

let rec drop_first n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop_first (n - 1) tl

let is_addr_suffix ~of_:full part =
  let d = List.length full - List.length part in
  d >= 0 && List.for_all2 Address.equal (drop_first d full) part

let handle t ~src msg =
  match msg with
  | Messages.Rreq _ -> handle_rreq t ~src msg
  | Messages.Rrep { sip; rr; _ } ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_rrep t ~src)
        ~forward:(fun ~next m ->
          (* Transit consistency (§4): an honest reply only ever travels
             the reversed route record back toward its requester, so the
             hops still to visit — us included — must form a suffix of
             that path.  A reply whose forwarding state disagrees with
             its own signed route record was re-injected off-path; drop
             it here and point at the radio transmitter, before relays
             further down can be fooled into accusing each other. *)
          if is_addr_suffix ~of_:(List.rev rr @ [ sip ]) (address t :: next)
          then Ctx.send_along t.ctx ~path:next m
          else
            Ctx.audit t.ctx ~kind:Audit.Replay_rejected ~subject_node:src
              ~stats:[ "secure.rrep_rejected"; "secure.transit_rejected" ]
              ~cause:"rrep in transit off its own reversed route record" ())
        ~not_mine:(fun _ -> ())
  | Messages.Crep _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_crep t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Data _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_data t)
        ~forward:(fun ~next m -> forward_data t ~next m)
        ~not_mine:(fun _ -> ())
  | Messages.Ack _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_ack t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Rerr _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_rerr t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Probe _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_probe t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Probe_reply _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_probe_reply t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Name_query _ | Messages.Name_reply _ | Messages.Ip_change_request _
  | Messages.Ip_change_challenge _ | Messages.Ip_change_proof _
  | Messages.Ip_change_ack _ ->
      Ctx.forward_transit t.ctx ~src msg
  | Messages.Areq _ | Messages.Arep _ | Messages.Drep _ -> ()
