lib/crypto/suite.mli: Prng
