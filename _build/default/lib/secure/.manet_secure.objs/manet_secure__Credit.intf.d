lib/secure/credit.mli: Manet_ipv6
