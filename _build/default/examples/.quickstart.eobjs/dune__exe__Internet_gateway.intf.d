examples/internet_gateway.mli:
