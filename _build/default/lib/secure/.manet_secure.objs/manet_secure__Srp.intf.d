lib/secure/srp.mli: Manet_ipv6 Manet_proto
