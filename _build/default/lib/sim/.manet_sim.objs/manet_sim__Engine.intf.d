lib/sim/engine.mli: Manet_crypto Stats Trace
