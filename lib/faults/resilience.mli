(** Recovery metrics for fault experiments.

    A {!monitor} samples the engine's stats counters on a fixed period,
    giving a time series of offered/delivered/RERR/DAD counts; named
    {!mark}s snapshot every counter at chosen instants so delivery ratio
    can be compared before, during, and after a fault window.  Both are
    scheduled as ordinary engine events, so monitoring perturbs neither
    time nor the PRNG streams. *)

open Manet_sim

type sample = {
  time : float;
  offered : int;  (** cumulative ["data.offered"] *)
  delivered : int;  (** cumulative ["data.delivered"] *)
  rerr_sent : int;  (** cumulative ["rerr.sent"] *)
  dad_configured : int;  (** cumulative ["dad.configured"] *)
}

type t

val monitor : ?period:float -> until:float -> Engine.t -> t
(** Schedule periodic sampling (default every simulated second) from
    now until [until].  Call before [Engine.run]. *)

val mark : t -> at:float -> string -> unit
(** Snapshot every stats counter at absolute time [at] under a name,
    e.g. ["pre-fault"], ["heal"]. *)

val phase : t -> from_mark:string -> to_mark:string -> float option
(** Delivery ratio of the window between two marks:
    (delivered in window) / (offered in window).  [None] if either mark
    is missing or nothing was offered in the window. *)

val route_repair_latency : t -> fault_at:float -> float option
(** Time from [fault_at] until the first sample showing a delivery
    beyond the pre-fault count — an upper bracket (at monitor
    resolution) on how long routing took to repair.  [None] if delivery
    never resumed within the monitored window. *)

val redad_convergence : Trace.t -> node:int -> float option
(** Gap between a node's [fault.restart] trace event and its next
    [dad.configured] — how long the re-bootstrap took.  Requires the
    trace to have been enabled for the run. *)

val pp_curve : Format.formatter -> t -> unit
(** Render {!delivery_curve} one interval per line. *)
