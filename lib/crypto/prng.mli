(** Deterministic pseudo-random number generation for simulations.

    The generator is xoshiro256** seeded through splitmix64, which gives
    high-quality 64-bit output streams that are reproducible from a single
    integer seed.  Determinism matters here: every experiment in the
    benchmark harness is replayable from its seed, and independent
    subsystems (topology, mobility, traffic, crypto) draw from streams
    {!split} off a common root so that changing one subsystem's consumption
    pattern does not perturb the others. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator whose entire future output is a
    function of [seed]. *)

val copy : t -> t
(** [copy g] is an independent generator that will replay [g]'s future. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator statistically
    independent of [g]'s subsequent output.  Used to give each subsystem
    its own stream. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val bytes : t -> int -> string
(** [bytes g n] is an [n]-byte uniformly random string. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place (Fisher-Yates). *)

val exponential : t -> mean:float -> float
(** [exponential g ~mean] samples an exponential distribution; used for
    Poisson traffic inter-arrival times. *)
