lib/sim/heap.mli:
