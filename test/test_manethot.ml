(* Self-tests for manethot, the hot-path allocation & complexity
   analyzer: every rule must fire on a synthetic hot fixture, stay
   quiet when the same code is cold (not reachable from the roster),
   and honour the roster propagation and strict annotation grammar.
   Fixtures live in string literals, so manetlint's lexical pass never
   sees them. *)

module Hot = Manethot.Hot
module Sem = Manetsem.Sem

let roster = ("tools/manethot/hotpaths.sexp", "(M hot)\n")

let analyze ?(roster = roster) files = Hot.analyze ~roster files

let count ?roster rule files =
  List.length
    (List.filter (fun f -> f.Hot.rule = rule) (analyze ?roster files))

let fires ?roster name rule files =
  Alcotest.(check bool) name true (count ?roster rule files > 0)

let clean ?roster name rule files =
  Alcotest.(check int) name 0 (count ?roster rule files)

(* --- hot-alloc ----------------------------------------------------------- *)

let test_hot_alloc_fires () =
  fires "tuple per call" "hot-alloc"
    [ ("lib/x/m.ml", "let hot x = (x, x + 1)\n") ];
  fires "record per call" "hot-alloc"
    [ ("lib/x/m.ml", "type r = { a : int }\nlet hot x = { a = x }\n") ];
  fires "closure per call" "hot-alloc"
    [ ("lib/x/m.ml", "let hot xs = List.iter (fun x -> print_int x) xs\n") ];
  fires "list cell per call" "hot-alloc"
    [ ("lib/x/m.ml", "let hot x acc = x :: acc\n") ];
  fires "ref cell per call" "hot-alloc"
    [ ("lib/x/m.ml", "let hot n =\n  let i = ref n in\n  !i\n") ];
  fires "string concatenation" "hot-alloc"
    [ ("lib/x/m.ml", "let hot a b = a ^ b\n") ];
  fires "array literal" "hot-alloc"
    [ ("lib/x/m.ml", "let hot x = [| x |]\n") ];
  fires "builder call" "hot-alloc"
    [ ("lib/x/m.ml", "let hot n = Hashtbl.create n\n") ];
  fires "sprintf builds a string" "hot-alloc"
    [ ("lib/x/m.ml", "let hot n = Printf.sprintf \"%d\" n\n") ]

let test_cold_code_is_quiet () =
  (* Identical allocation sites, but the function is not on (or
     reachable from) the roster: no findings at all. *)
  clean "cold tuple" "hot-alloc"
    [ ("lib/x/m.ml", "let cold x = (x, x + 1)\nlet hot x = x + 1\n") ];
  clean "no roster match means nothing is hot" "hot-alloc"
    ~roster:("tools/manethot/hotpaths.sexp", "")
    [ ("lib/x/m.ml", "let f x = (x, x)\n") ];
  (* Non-allocating hot code is clean. *)
  clean "pure arithmetic" "hot-alloc"
    [ ("lib/x/m.ml", "let hot a b = (a * 31) + b\n") ];
  clean "empty array literal" "hot-alloc"
    [ ("lib/x/m.ml", "let hot () = ([||] : int array)\n") ]

(* --- hot-poly ------------------------------------------------------------ *)

let test_hot_poly () =
  fires "bare compare" "hot-poly"
    [ ("lib/x/m.ml", "let hot a b = compare a b\n") ];
  fires "Stdlib.min" "hot-poly"
    [ ("lib/x/m.ml", "let hot a b = Stdlib.min a b\n") ];
  fires "structural equality on a constructed operand" "hot-poly"
    [ ("lib/x/m.ml", "let hot a b = a = (b, b)\n") ];
  fires "generic Hashtbl op hashes polymorphically" "hot-poly"
    [ ("lib/x/m.ml", "let hot tbl k = Hashtbl.find tbl k\n") ];
  clean "functor instance is monomorphic by construction" "hot-poly"
    [
      ( "lib/x/m.ml",
        "module Stbl = Hashtbl.Make (struct\n\
        \  type t = string\n\n\
        \  let equal = String.equal\n\
        \  let hash = String.hash\n\
         end)\n\n\
         let hot tbl k = Stbl.find tbl k\n" );
    ];
  clean "monomorphic compare" "hot-poly"
    [ ("lib/x/m.ml", "let hot a b = Int.compare a b\n") ];
  clean "equality between plain variables is left alone" "hot-poly"
    [ ("lib/x/m.ml", "let hot a b = a = b\n") ]

(* --- hot-list ------------------------------------------------------------ *)

let test_hot_list () =
  fires "List.length is O(n)" "hot-list"
    [ ("lib/x/m.ml", "let hot xs = List.length xs\n") ];
  fires "List.assoc is O(n)" "hot-list"
    [ ("lib/x/m.ml", "let hot k xs = List.assoc k xs\n") ];
  fires "@ copies the left list" "hot-list"
    [ ("lib/x/m.ml", "let hot a b = a @ b\n") ];
  clean "array access is constant-time" "hot-list"
    [ ("lib/x/m.ml", "let hot a i = Array.length a + a.(i)\n") ]

(* --- hot-partial --------------------------------------------------------- *)

let test_hot_partial () =
  fires "partially applied callback rebuilt per call" "hot-partial"
    [ ("lib/x/m.ml", "let g a b = a + b\nlet hot xs = List.iter (g 1) xs\n") ];
  (* A direct function reference allocates nothing at the call. *)
  clean "named callback is fine" "hot-partial"
    [ ("lib/x/m.ml", "let g x = print_int x\nlet hot xs = List.iter g xs\n") ];
  (* A literal lambda is a hot-alloc closure, not a hot-partial. *)
  clean "literal lambda is hot-alloc, not hot-partial" "hot-partial"
    [ ("lib/x/m.ml", "let hot xs = List.iter (fun x -> print_int x) xs\n") ]

(* --- roster propagation -------------------------------------------------- *)

let test_roster_propagation () =
  (* hot calls helper, helper calls deep: all three are hot; lone is
     not referenced and stays cold. *)
  let files =
    [
      ( "lib/x/m.ml",
        "let deep x = (x, x)\n\
         let helper x = deep x\n\
         let hot x = helper x\n\
         let lone x = (x, x)\n" );
    ]
  in
  Alcotest.(check (list (pair string string)))
    "transitive callees are hot"
    [ ("M", "deep"); ("M", "helper"); ("M", "hot") ]
    (Hot.hot_set ~roster:"(M hot)\n" files);
  (* The deep callee's allocation is reported even though only the
     root is on the roster. *)
  Alcotest.(check bool)
    "deep allocation reported" true
    (List.exists
       (fun f -> f.Hot.rule = "hot-alloc" && f.Hot.line = 1)
       (analyze files));
  (* Cross-module propagation through a module alias. *)
  let files2 =
    [
      ("lib/x/util.ml", "let pair x = (x, x)\n");
      ("lib/x/m.ml", "module U = Util\nlet hot x = U.pair x\n");
    ]
  in
  Alcotest.(check (list (pair string string)))
    "alias-resolved cross-module callee is hot"
    [ ("M", "hot"); ("Util", "pair") ]
    (Hot.hot_set ~roster:"(M hot)\n" files2)

let test_roster_errors () =
  fires "stale roster entry" "roster"
    [ ("lib/x/m.ml", "let hot x = x\n") ]
    ~roster:("tools/manethot/hotpaths.sexp", "(M hot)\n(M gone)\n");
  fires "roster entry naming a non-function value" "roster"
    [ ("lib/x/m.ml", "let hot = 42\n") ];
  fires "lowercase module name" "roster"
    ~roster:("tools/manethot/hotpaths.sexp", "(m hot)\n")
    [ ("lib/x/m.ml", "let hot x = x\n") ];
  fires "malformed entry" "roster"
    ~roster:("tools/manethot/hotpaths.sexp", "(M hot extra)\n")
    [ ("lib/x/m.ml", "let hot x = x\n") ];
  clean "comments and blank lines are fine" "roster"
    ~roster:("tools/manethot/hotpaths.sexp", "; seeds\n\n(M hot)\n")
    [ ("lib/x/m.ml", "let hot x = x + 1\n") ]

(* --- annotations --------------------------------------------------------- *)

let test_annotation_suppresses () =
  clean "allow with rationale suppresses" "hot-alloc"
    [
      ( "lib/x/m.ml",
        "let hot x =\n\
        \  (* manethot: allow hot-alloc — boxed once per run, not per \
         event. *)\n\
        \  (x, x)\n" );
    ];
  clean "allow-file with rationale suppresses everywhere" "hot-alloc"
    [
      ( "lib/x/m.ml",
        "(* manethot: allow-file hot-alloc — fixture: allocation is the \
         point. *)\n\
         let hot x = (x, x)\n\
         let hot2 x = [ x ]\n" );
    ]

let test_annotation_requires_rationale () =
  let files =
    [
      ( "lib/x/m.ml",
        "let hot x =\n  (* manethot: allow hot-alloc *)\n  (x, x)\n" );
    ]
  in
  fires "rationale-free allow is an annotation finding" "annotation" files;
  fires "rationale-free allow does not suppress" "hot-alloc" files;
  fires "annotation findings are unsuppressible" "annotation"
    [
      ( "lib/x/m.ml",
        "(* manethot: allow-file annotation — because. *)\n\
         (* manethot: allow hot-alloc *)\n\
         let hot x = (x, x)\n" );
    ]

(* --- baseline plumbing --------------------------------------------------- *)

let test_baseline () =
  let files = [ ("lib/x/m.ml", "let hot x = (x, x)\n") ] in
  let findings = analyze files in
  Alcotest.(check bool) "fixture fires" true (findings <> []);
  let baseline =
    Sem.parse_baseline (Sem.render_baseline ~tool:"manethot" findings)
  in
  let fresh, stale = Sem.diff_baseline ~baseline findings in
  Alcotest.(check int) "pinned findings are not fresh" 0 (List.length fresh);
  Alcotest.(check int) "no stale keys while they fire" 0 (List.length stale);
  let fresh', stale' = Sem.diff_baseline ~baseline [] in
  Alcotest.(check int) "nothing fresh after the fix" 0 (List.length fresh');
  Alcotest.(check int) "fixed finding leaves a stale key" 1
    (List.length stale')

let test_rule_catalogue () =
  Alcotest.(check bool) "rule catalogue non-empty" true (Hot.rules <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "annotation is not an allowable rule" true
        (r <> "annotation"))
    Hot.rules

let suites =
  [
    ( "manethot",
      [
        Alcotest.test_case "hot-alloc fires" `Quick test_hot_alloc_fires;
        Alcotest.test_case "cold code is quiet" `Quick test_cold_code_is_quiet;
        Alcotest.test_case "hot-poly" `Quick test_hot_poly;
        Alcotest.test_case "hot-list" `Quick test_hot_list;
        Alcotest.test_case "hot-partial" `Quick test_hot_partial;
        Alcotest.test_case "roster propagation" `Quick test_roster_propagation;
        Alcotest.test_case "roster errors" `Quick test_roster_errors;
        Alcotest.test_case "annotations suppress" `Quick
          test_annotation_suppresses;
        Alcotest.test_case "annotations need rationale" `Quick
          test_annotation_requires_rationale;
        Alcotest.test_case "baseline plumbing" `Quick test_baseline;
        Alcotest.test_case "rule catalogue" `Quick test_rule_catalogue;
      ] );
  ]
