lib/proto/messages.mli: Format Manet_ipv6
