module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats

let report_schema = "manetsim-report"
let report_version = 1

(* --- neutral span representation ---------------------------------------- *)

(* Both live [Obs.span] values and spans re-read from a JSONL file are
   folded into this one shape so the aggregation and rendering code is
   written once. *)
type span_info = {
  i_id : int;
  i_parent : int option;
  i_kind : string;
  i_node : int;
  i_detail : string;
  i_start : float;
  i_end : float option;
  i_outcome : string option;
  i_reason : string option;
  i_notes : (float * int * string) list; (* oldest first *)
}

let info_of_span (s : Obs.span) =
  {
    i_id = s.id;
    i_parent = s.parent;
    i_kind = s.kind;
    i_node = s.node;
    i_detail = s.detail;
    i_start = s.start_time;
    i_end = s.end_time;
    i_outcome = Option.map Obs.outcome_label s.outcome;
    i_reason = Option.join (Option.map Obs.outcome_reason s.outcome);
    i_notes = List.rev s.notes;
  }

let duration s = Option.map (fun e -> e -. s.i_start) s.i_end

(* --- percentiles over duration samples ----------------------------------- *)

(* Exact nearest-rank order statistic; these sample sets are small
   (one entry per span), so no reservoir is needed. *)
let pctl sorted q =
  let n = Array.length sorted in
  if n = 0 then None
  else begin
    let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    let i = if i < 0 then 0 else if i > n - 1 then n - 1 else i in
    Some sorted.(i)
  end

let sorted_durations spans pred =
  let d =
    List.filter_map (fun s -> if pred s then duration s else None) spans
  in
  let a = Array.of_list d in
  Array.sort Float.compare a;
  a

(* --- phase extraction ----------------------------------------------------- *)

let phase_names =
  [ "dad.convergence"; "re_dad.convergence"; "route.discovery_rtt" ]

let phase_durations spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.i_id s) spans;
  let parent_kind s =
    match s.i_parent with
    | None -> None
    | Some p -> Option.map (fun ps -> ps.i_kind) (Hashtbl.find_opt by_id p)
  in
  let ok s = s.i_outcome = Some "ok" in
  let after_outage s = parent_kind s = Some "fault.outage" in
  [
    ( "dad.convergence",
      sorted_durations spans (fun s ->
          String.equal s.i_kind "dad.bootstrap" && ok s && not (after_outage s)) );
    ( "re_dad.convergence",
      sorted_durations spans (fun s ->
          String.equal s.i_kind "dad.bootstrap" && ok s && after_outage s) );
    ( "route.discovery_rtt",
      sorted_durations spans (fun s ->
          String.equal s.i_kind "route.discovery" && ok s) );
  ]

(* --- JSON run report ------------------------------------------------------ *)

let pctl_fields sorted =
  let f q =
    match pctl sorted q with Some x -> Json.Float x | None -> Json.Null
  in
  [ ("p50", f 0.5); ("p90", f 0.9); ("p99", f 0.99) ]

let span_aggregates spans =
  let kinds =
    List.sort_uniq String.compare (List.map (fun s -> s.i_kind) spans)
  in
  List.map
    (fun kind ->
      let of_kind = List.filter (fun s -> String.equal s.i_kind kind) spans in
      let count_outcome o =
        List.length
          (List.filter (fun s -> s.i_outcome = Some o) of_kind)
      in
      let opened =
        List.length (List.filter (fun s -> s.i_outcome = None) of_kind)
      in
      let sorted = sorted_durations of_kind (fun _ -> true) in
      let max_d =
        let n = Array.length sorted in
        if n = 0 then Json.Null else Json.Float sorted.(n - 1)
      in
      ( kind,
        Json.Obj
          ([
             ("count", Json.Int (List.length of_kind));
             ("ok", Json.Int (count_outcome "ok"));
             ("timeout", Json.Int (count_outcome "timeout"));
             ("rejected", Json.Int (count_outcome "rejected"));
             ("failed", Json.Int (count_outcome "failed"));
             ("open", Json.Int opened);
           ]
          @ pctl_fields sorted
          @ [ ("max", max_d) ]) ))
    kinds

let phases_json spans =
  Json.Obj
    (List.map
       (fun (name, sorted) ->
         ( name,
           Json.Obj
             (("count", Json.Int (Array.length sorted)) :: pctl_fields sorted)
         ))
       (phase_durations spans))

let profile_json engine =
  Json.Obj
    [
      ("enabled", Json.Bool (Engine.profiling engine));
      ("wall_s", Json.Float (Engine.wall_in_run engine));
      ("events_per_sec", Json.Float (Engine.events_per_sec engine));
      ( "classes",
        Json.Obj
          (List.map
             (fun (label, (e : Engine.profile_entry)) ->
               ( label,
                 Json.Obj
                   [
                     ("count", Json.Int e.p_count);
                     ("wall_s", Json.Float e.p_wall_s);
                   ] ))
             (Engine.profile engine)) );
    ]

let run_report ~engine ~obs ?(extra = []) () =
  let stats = Engine.stats engine in
  let counters =
    Json.Obj
      (List.map (fun (k, v) -> (k, Json.Int v)) (Stats.counters stats))
  in
  let summaries =
    Json.Obj
      (List.map
         (fun (name, (s : Stats.summary)) ->
           let p q =
             match Stats.percentile stats name q with
             | Some x -> Json.Float x
             | None -> Json.Null
           in
           ( name,
             Json.Obj
               [
                 ("count", Json.Int s.count);
                 ("mean", Json.Float s.mean);
                 ("stddev", Json.Float s.stddev);
                 ("min", Json.Float s.min);
                 ("max", Json.Float s.max);
                 ("p50", p 0.5);
                 ("p90", p 0.9);
                 ("p99", p 0.99);
               ] ))
         (Stats.summaries stats))
  in
  let spans = List.map info_of_span (Obs.spans obs) in
  Json.Obj
    ([
       ("schema", Json.String report_schema);
       ("version", Json.Int report_version);
     ]
    @ extra
    @ [
        ("sim_time", Json.Float (Engine.now engine));
        ("events_processed", Json.Int (Engine.events_processed engine));
        ("span_count", Json.Int (Obs.span_count obs));
        ("counters", counters);
        ("summaries", summaries);
        ("span_aggregates", Json.Obj (span_aggregates spans));
        ("phases", phases_json spans);
        ("profile", profile_json engine);
      ])

(* --- JSONL parsing -------------------------------------------------------- *)

type parsed = {
  header : Json.t;
  spans : span_info list;
  events : Obs.event list;
}

let req what v =
  match v with
  | Some x -> x
  | None -> raise (Json.Parse_error ("missing or ill-typed " ^ what))

let get_int j key = req key (Option.bind (Json.member key j) Json.to_int_opt)

let get_float j key =
  req key (Option.bind (Json.member key j) Json.to_float_opt)

let get_string j key =
  req key (Option.bind (Json.member key j) Json.to_string_opt)

let opt get j key =
  match Json.member key j with
  | None | Some Json.Null -> None
  | Some v -> Some (req key (get v))

let parse_note j =
  (get_float j "t", get_int j "node", get_string j "text")

let parse_span_line j =
  {
    i_id = get_int j "id";
    i_parent = opt Json.to_int_opt j "parent";
    i_kind = get_string j "kind";
    i_node = get_int j "node";
    i_detail = get_string j "detail";
    i_start = get_float j "start";
    i_end = opt Json.to_float_opt j "end";
    i_outcome = opt Json.to_string_opt j "outcome";
    i_reason = opt Json.to_string_opt j "reason";
    i_notes =
      (match Json.member "notes" j with
      | None -> []
      | Some l -> List.map parse_note (req "notes" (Json.to_list_opt l)));
  }

let parse_event_line j : Obs.event =
  {
    time = get_float j "t";
    node = get_int j "node";
    name = get_string j "name";
    detail = get_string j "detail";
  }

let parse_jsonl text =
  let lines =
    List.filter
      (fun l -> String.length (String.trim l) > 0)
      (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> raise (Json.Parse_error "empty trace file")
  | header_line :: rest ->
      let header = Json.parse header_line in
      let schema = get_string header "schema" in
      if not (String.equal schema Obs.schema) then
        raise
          (Json.Parse_error
             (Printf.sprintf "unexpected schema %S (want %S)" schema Obs.schema));
      let version = get_int header "version" in
      if version <> Obs.schema_version then
        raise
          (Json.Parse_error
             (Printf.sprintf "unsupported trace version %d (support %d)"
                version Obs.schema_version));
      let spans = ref [] and events = ref [] in
      List.iter
        (fun line ->
          let j = Json.parse line in
          match get_string j "type" with
          | "span" -> spans := parse_span_line j :: !spans
          | "event" -> events := parse_event_line j :: !events
          | other ->
              raise
                (Json.Parse_error ("unknown trace line type " ^ other)))
        rest;
      { header; spans = List.rev !spans; events = List.rev !events }

(* --- text rendering ------------------------------------------------------- *)

let describe s =
  let dur =
    match duration s with
    | Some d -> Printf.sprintf "%.3fs" d
    | None -> "open"
  in
  let outcome =
    match (s.i_outcome, s.i_reason) with
    | Some o, Some r -> Printf.sprintf "%s (%s)" o r
    | Some o, None -> o
    | None, _ -> "-"
  in
  let detail = if String.equal s.i_detail "" then "" else " " ^ s.i_detail in
  Printf.sprintf "#%d %s [n%d]%s · %s · %s" s.i_id s.i_kind s.i_node detail
    dur outcome

let render_tree parsed =
  let buf = Buffer.create 1024 in
  let ids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace ids s.i_id ()) parsed.spans;
  let children = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.i_parent with
      | Some p when Hashtbl.mem ids p ->
          let l = Option.value ~default:[] (Hashtbl.find_opt children p) in
          Hashtbl.replace children p (s :: l)
      | Some _ | None -> ())
    parsed.spans;
  let is_root s =
    match s.i_parent with
    | None -> true
    | Some p -> not (Hashtbl.mem ids p)
  in
  let rec emit indent s =
    Buffer.add_string buf indent;
    Buffer.add_string buf (describe s);
    Buffer.add_char buf '\n';
    List.iter
      (fun (t, node, text) ->
        Buffer.add_string buf
          (Printf.sprintf "%s  · t=%.3f n%d %s\n" indent t node text))
      s.i_notes;
    let kids =
      List.sort
        (fun a b -> Int.compare a.i_id b.i_id)
        (Option.value ~default:[] (Hashtbl.find_opt children s.i_id))
    in
    List.iter (emit (indent ^ "  ")) kids
  in
  List.iter (fun s -> if is_root s then emit "" s) parsed.spans;
  Buffer.contents buf

let render_phases parsed =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %6s %9s %9s %9s %9s %9s\n" "phase" "count" "min"
       "p50" "p90" "p99" "max");
  List.iter
    (fun (name, sorted) ->
      let n = Array.length sorted in
      if n = 0 then
        Buffer.add_string buf
          (Printf.sprintf "%-24s %6d %9s %9s %9s %9s %9s\n" name 0 "-" "-" "-"
             "-" "-")
      else begin
        let f q =
          match pctl sorted q with Some x -> x | None -> Float.nan
        in
        Buffer.add_string buf
          (Printf.sprintf "%-24s %6d %9.3f %9.3f %9.3f %9.3f %9.3f\n" name n
             sorted.(0) (f 0.5) (f 0.9) (f 0.99)
             sorted.(n - 1))
      end)
    (phase_durations parsed.spans);
  Buffer.contents buf

let render_top ?(k = 10) parsed =
  let finished =
    List.filter_map
      (fun s -> Option.map (fun d -> (d, s)) (duration s))
      parsed.spans
  in
  let sorted =
    List.sort
      (fun (da, a) (db, b) ->
        match Float.compare db da with
        | 0 -> Int.compare a.i_id b.i_id
        | c -> c)
      finished
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (d, s) ->
      Buffer.add_string buf (Printf.sprintf "%9.3fs  " d);
      Buffer.add_string buf (describe s);
      Buffer.add_char buf '\n')
    (take k sorted);
  Buffer.contents buf
