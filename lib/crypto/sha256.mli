(** SHA-256 (FIPS 180-4), implemented from scratch.

    This is the protocol's publicly known one-way, collision-resistant
    hash function [H]: it generates the 64-bit interface identifier of
    cryptographically generated addresses (CGAs) and compresses messages
    before signing.  The implementation processes 32-bit words in native
    ints and offers both one-shot and streaming interfaces. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val update : ctx -> string -> unit
(** [update ctx s] absorbs the whole of [s]. *)

val finalize : ctx -> string
(** [finalize ctx] is the 32-byte digest.  The context must not be used
    afterwards. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 digest of [s]. *)

val digest_hex : string -> string
(** [digest_hex s] is [digest s] rendered as 64 lower-case hex digits. *)

val hex : string -> string
(** [hex s] renders an arbitrary byte string in lower-case hex. *)

val blocks_of_len : int -> int
(** Number of 64-byte compression blocks a one-shot digest of a
    [len]-byte message processes: [ceil ((len + 9) / 64)].  The perf
    registry uses it to account hash cost in architecture-independent
    units.  Raises [Invalid_argument] on a negative length. *)
