(* manetdom driver.

   Usage:
     main.exe [--baseline FILE] [--write-baseline] [--json FILE] [ROOT]...

   ROOTs (default: lib) are analyzed.  Exit 1 on any finding not pinned
   in the baseline, or on stale baseline entries — a pinned key whose
   finding no longer fires fails the build too, so fixed findings must
   leave the baseline in the same commit. *)

let default_baseline = "tools/manetdom/baseline"

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.filter (fun n -> n <> "_build" && n.[0] <> '.')
    |> List.fold_left (fun acc n -> walk acc (Filename.concat path n)) acc
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gather roots =
  roots
  |> List.filter Sys.file_exists
  |> List.fold_left walk []
  |> List.sort compare
  |> List.map (fun p -> (p, read_file p))

let () =
  let roots = ref [] in
  let baseline_path = ref default_baseline in
  let write_baseline = ref false in
  let json_path = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: p :: rest ->
        baseline_path := p;
        parse_args rest
    | "--write-baseline" :: rest ->
        write_baseline := true;
        parse_args rest
    | "--json" :: p :: rest ->
        json_path := Some p;
        parse_args rest
    | arg :: rest ->
        roots := !roots @ [ arg ];
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots = if !roots = [] then [ "lib" ] else !roots in
  let findings = Manetdom.Dom.analyze (gather roots) in
  let module Sem = Manetsem.Sem in
  if !write_baseline then begin
    let oc = open_out !baseline_path in
    output_string oc (Sem.render_baseline ~tool:"manetdom" findings);
    close_out oc;
    Printf.printf "manetdom: wrote %d baseline entr%s to %s\n"
      (List.length findings)
      (if List.length findings = 1 then "y" else "ies")
      !baseline_path
  end
  else begin
    let baseline =
      if Sys.file_exists !baseline_path then
        Sem.parse_baseline (read_file !baseline_path)
      else []
    in
    (match !json_path with
    | Some p ->
        let oc = open_out p in
        output_string oc (Sem.to_json ~baseline findings);
        close_out oc
    | None -> ());
    let fresh, stale = Sem.diff_baseline ~baseline findings in
    List.iter (fun f -> Format.printf "%a@." Sem.pp_finding f) fresh;
    List.iter
      (fun k ->
        Printf.printf
          "%s: stale baseline entry (no longer fires); remove it or rerun \
           --write-baseline\n"
          k)
      stale;
    if fresh <> [] || stale <> [] then begin
      Printf.printf "manetdom: %d new finding(s), %d stale baseline entr%s\n"
        (List.length fresh) (List.length stale)
        (if List.length stale = 1 then "y" else "ies");
      exit 1
    end
  end
