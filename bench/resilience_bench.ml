(* Resilience experiments: fault plans against running scenarios.

   R1 partitions a chain mid-run and reports per-phase delivery ratio,
   the recovery curve, and route-repair latency after the heal.  R2
   sweeps node-churn intensity and reports how delivery and re-DAD
   convergence degrade as nodes cycle faster. *)

module Engine = Manetsec.Sim.Engine
module Stats = Manetsec.Sim.Stats
module Trace = Manetsec.Sim.Trace
module Faults = Manetsec.Faults
module Resilience = Manetsec.Resilience
module Scenario = Manetsec.Scenario

let stat s name = Stats.get (Scenario.stats s) name

(* --- R1: partition / heal recovery curve -------------------------------- *)

let r1 () =
  Util.heading "R1: partition & heal on a chain (secure protocol)";
  let n = 10 in
  let params =
    {
      Scenario.default_params with
      n;
      seed = 11;
      range = 250.0;
      topology = Scenario.Chain { spacing = 200.0 };
    }
  in
  let s = Scenario.create params in
  Scenario.bootstrap s;
  let engine = Scenario.engine s in
  let t0 = Engine.now engine in
  let fault_at = t0 +. 15.0 and heal_at = t0 +. 30.0 and stop = t0 +. 60.0 in
  (* Flows that must cross the cut between nodes 5 and 6. *)
  Scenario.start_cbr s ~flows:[ (1, 8); (2, 7) ] ~interval:0.5 ~duration:(stop -. t0) ();
  let mon = Resilience.monitor ~period:1.0 ~until:stop engine in
  Resilience.mark mon ~at:(t0 +. 0.5) "start";
  Resilience.mark mon ~at:fault_at "fault";
  Resilience.mark mon ~at:heal_at "heal";
  Resilience.mark mon ~at:(stop -. 0.5) "end";
  Scenario.inject s (Faults.partition ~from:fault_at ~until:heal_at [ 6; 7; 8; 9 ]);
  Scenario.run s ~until:(stop +. 5.0);
  let phase a b =
    match Resilience.phase mon ~from_mark:a ~to_mark:b with
    | Some r -> Util.f2 r
    | None -> "-"
  in
  Util.print_table
    ~header:[ "phase"; "delivery ratio" ]
    [
      [ "before fault"; phase "start" "fault" ];
      [ "during partition"; phase "fault" "heal" ];
      [ "after heal"; phase "heal" "end" ];
    ];
  (match Resilience.route_repair_latency mon ~fault_at:heal_at with
  | Some l -> Printf.printf "\nroute repair after heal: %.1f s\n" l
  | None -> Printf.printf "\nroute repair after heal: never\n");
  Printf.printf "rerr.sent=%d rerr.received=%d hostile_suspected=%d\n"
    (stat s "rerr.sent") (stat s "rerr.received")
    (stat s "secure.hostile_suspected");
  Util.subheading "delivery ratio per second";
  Format.printf "%a@." Resilience.pp_curve mon

(* --- R2: churn intensity sweep ------------------------------------------ *)

let r2_run ~mean_up ~mean_down =
  let n = 12 in
  let params =
    {
      Scenario.default_params with
      n;
      seed = 23;
      topology = Scenario.Random { width = 700.0; height = 700.0 };
    }
  in
  let s = Scenario.create params in
  let engine = Scenario.engine s in
  Trace.enable (Engine.trace engine);
  Scenario.bootstrap s;
  let t0 = Engine.now engine in
  let duration = 60.0 in
  Scenario.start_cbr s ~flows:[ (1, 7); (2, 9); (3, 11) ] ~interval:0.5 ~duration ();
  (if mean_down > 0.0 then
     let movers = List.init (n - 1) (fun i -> i + 1) in
     let plan =
       Faults.churn ~seed:(params.Scenario.seed * 131) ~nodes:movers
         ~horizon:duration ~mean_up ~mean_down
     in
     (* Shift the plan past bootstrap: churn times are relative to 0. *)
     let shifted =
       List.map (fun st -> { st with Faults.at = st.Faults.at +. t0 }) plan
     in
     Scenario.inject s shifted);
  Scenario.run s ~until:(t0 +. duration +. 10.0);
  let restarts = stat s "fault.restart" in
  let redads =
    List.filter_map
      (fun i -> Resilience.redad_convergence (Engine.trace engine) ~node:i)
      (List.init (n - 1) (fun i -> i + 1))
  in
  let mean_redad =
    match redads with [] -> nan | l -> Util.mean l
  in
  (Scenario.delivery_ratio s, restarts, stat s "dad.configured", mean_redad)

let r2 () =
  Util.heading "R2: delivery & re-DAD convergence vs churn intensity";
  let rows =
    List.map
      (fun (label, mean_up, mean_down) ->
        let ratio, restarts, configured, redad = r2_run ~mean_up ~mean_down in
        [
          label;
          Util.f2 ratio;
          Util.i restarts;
          Util.i configured;
          (if Float.is_nan redad then "-" else Util.f1 redad);
        ])
      [
        ("no churn", 1.0, 0.0);
        ("gentle (up 40s / down 5s)", 40.0, 5.0);
        ("moderate (up 20s / down 5s)", 20.0, 5.0);
        ("harsh (up 10s / down 5s)", 10.0, 5.0);
      ]
  in
  Util.print_table
    ~header:
      [ "churn"; "delivery"; "restarts"; "dad.configured"; "re-DAD mean (s)" ]
    rows

let run () =
  r1 ();
  r2 ()
