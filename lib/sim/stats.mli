(** Metric collection for simulation runs.

    Two kinds of metrics: named integer counters (packets sent, signatures
    checked, ...) and named summaries of float observations (latencies,
    hop counts, ...) maintained with Welford's online algorithm so no
    sample buffer is needed. *)

type t

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** [incr t name] adds [by] (default 1) to counter [name], creating it
    at zero first if needed. *)

val get : t -> string -> int
(** Counter value; 0 when never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name ([String.compare], i.e. byte order).
    The sort is a {e determinism contract}, not a courtesy: exports
    built on this list (run reports, metrics CSV/Prometheus text) claim
    byte-identical output across replays of a seed, which would not
    survive iteration in [Hashtbl] bucket order — bucket order depends
    on insertion history and the unspecified [Hashtbl.hash].  Tested in
    [test_sim.ml]. *)

type snapshot = (string * int) list
(** A point-in-time copy of every counter, sorted by name — the raw
    material for windowed metrics (delivery ratio before/during/after a
    fault, per-phase overhead, ...). *)

val snapshot : t -> snapshot

val snapshot_get : snapshot -> string -> int
(** Counter value in a snapshot; 0 when absent. *)

val delta : before:snapshot -> after:snapshot -> snapshot
(** Per-counter difference [after - before], omitting zero entries. *)

val observe : t -> string -> float -> unit
(** Add one sample to summary [name]. *)

val summary : t -> string -> summary option
(** [None] when no sample was ever observed under [name]. *)

val summaries : t -> (string * summary) list
(** All summaries, sorted by name — same byte-order determinism
    contract as {!counters}, for the same exporters. *)

val percentile : t -> string -> float -> float option
(** [percentile t name q] estimates the [q]-quantile ([0..1]) of the
    samples observed under [name].  [None] when nothing was observed;
    raises [Invalid_argument] when [q] is outside [0, 1].

    Estimator: samples are kept in a 1024-slot reservoir.  While at most
    1024 samples have been observed the reservoir holds every one of
    them and the result is {e exact} — the nearest-rank order statistic
    [sorted.(round (q * (n - 1)))].  Beyond the cap the reservoir is a
    uniform random sample maintained with Vitter's Algorithm R, and the
    result is the same order statistic over that sample — an unbiased
    estimate whose error shrinks with the reservoir size.

    Replacement decisions come from a private LCG seeded with an FNV-1a
    hash of [name] (not from the run PRNG and not from [Hashtbl.hash],
    whose value is unspecified across OCaml versions), so for a fixed
    observation sequence the estimate is bit-for-bit reproducible
    everywhere. *)

val clear : t -> unit
