(** Arbitrary-precision signed integers.

    The sealed container has no [zarith], so the RSA substrate is built on
    this from-scratch implementation: sign-magnitude representation over
    26-bit limbs (products of two limbs fit comfortably in OCaml's 63-bit
    native ints), schoolbook and Karatsuba multiplication, Knuth
    algorithm-D division, and the number-theoretic operations RSA needs
    (modular exponentiation, inverse, Miller-Rabin primality, prime
    generation). *)

type t
(** An immutable arbitrary-precision integer. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native int. *)

val of_string : string -> t
(** [of_string s] parses an optionally-signed decimal literal.
    Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Decimal rendering, with a leading ['-'] when negative. *)

val of_bytes_be : string -> t
(** [of_bytes_be s] interprets [s] as an unsigned big-endian integer. *)

val to_bytes_be : ?pad:int -> t -> string
(** [to_bytes_be ?pad n] is the big-endian byte encoding of the absolute
    value of [n], left-padded with zero bytes to at least [pad] bytes. *)

val of_hex : string -> t
(** [of_hex s] parses an unsigned hexadecimal literal (no ["0x"] prefix). *)

val to_hex : t -> string
(** Lower-case hexadecimal rendering of the absolute value. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is truncating division: quotient rounded toward zero,
    remainder carrying the sign of [a].  Raises [Division_by_zero]. *)

val mod_ : t -> t -> t
(** [mod_ a m] is the least non-negative residue of [a] modulo [m];
    [m] must be positive. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude; sign preserved. *)

val testbit : t -> int -> bool
(** [testbit n i] is bit [i] of the magnitude of [n]. *)

val numbits : t -> int
(** Number of significant bits of the magnitude; [numbits zero = 0]. *)

val gcd : t -> t -> t
val egcd : t -> t -> t * t * t
(** [egcd a b] for non-negative [a], [b] is [(g, x, y)] with
    [a*x + b*y = g = gcd a b]. *)

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], for positive [m]. *)

val mod_pow : t -> t -> t -> t
(** [mod_pow b e m] is [b^e mod m] for non-negative [e] and positive [m].
    Odd multi-limb moduli (the RSA case) take a Montgomery (CIOS) fast
    path; everything else uses square-and-multiply with division. *)

val mod_pow_generic : t -> t -> t -> t
(** The division-based path, exposed so tests and benchmarks can compare
    it against the Montgomery implementation.  Same contract as
    {!mod_pow} except that the modulus checks are the caller's job. *)

val random : Prng.t -> bits:int -> t
(** Uniform non-negative integer of at most [bits] bits. *)

val random_below : Prng.t -> t -> t
(** [random_below g n] is uniform in [\[0, n)] for positive [n]. *)

val is_probable_prime : ?rounds:int -> Prng.t -> t -> bool
(** Miller-Rabin test; deterministic trial division by small primes first.
    Error probability at most [4^-rounds] (default 24 rounds). *)

val generate_prime : Prng.t -> bits:int -> t
(** A random probable prime with exactly [bits] significant bits
    (top bit set).  [bits] must be at least 2. *)

val pp : Format.formatter -> t -> unit
