type keypair = { pk_bytes : string; sign : string -> string }

type t = {
  scheme_name : string;
  generate : unit -> keypair;
  verify : pk_bytes:string -> msg:string -> signature:string -> bool;
  signature_size : int;
  public_key_size : int;
  mutable sign_count : int;
  mutable verify_count : int;
}

let rsa ?(bits = 512) prng =
  let rec suite =
    {
      scheme_name = Printf.sprintf "rsa-%d" bits;
      generate =
        (fun () ->
          let pub, priv = Rsa.generate prng ~bits in
          {
            pk_bytes = Rsa.public_key_to_bytes pub;
            sign =
              (fun msg ->
                suite.sign_count <- suite.sign_count + 1;
                Rsa.sign priv msg);
          });
      verify =
        (fun ~pk_bytes ~msg ~signature ->
          suite.verify_count <- suite.verify_count + 1;
          match Rsa.public_key_of_bytes pk_bytes with
          | None -> false
          | Some pk -> Rsa.verify pk ~msg ~signature);
      (* n is [bits] bits and e = 65537: 3 bytes, plus two 2-byte length
         prefixes. *)
      signature_size = (bits + 7) / 8;
      public_key_size = ((bits + 7) / 8) + 3 + 4;
      sign_count = 0;
      verify_count = 0;
    }
  in
  suite

let mock prng =
  let registry = Mock_sig.create_registry () in
  let rec suite =
    {
      scheme_name = "mock-hmac";
      generate =
        (fun () ->
          let pk_bytes, sk = Mock_sig.generate registry prng in
          {
            pk_bytes;
            sign =
              (fun msg ->
                suite.sign_count <- suite.sign_count + 1;
                Mock_sig.sign sk msg);
          });
      verify =
        (fun ~pk_bytes ~msg ~signature ->
          suite.verify_count <- suite.verify_count + 1;
          Mock_sig.verify registry ~pk_bytes ~msg ~signature);
      signature_size = Mock_sig.signature_size;
      public_key_size = Mock_sig.public_key_size;
      sign_count = 0;
      verify_count = 0;
    }
  in
  suite

let reset_counters t =
  t.sign_count <- 0;
  t.verify_count <- 0
