(* benchtrend — render the perf trajectory across committed bench
   snapshots.

   Usage: main.exe [--csv] BENCH_A.json BENCH_B.json ...

   Reads any number of manetsim-bench snapshots (bench/perf_bench.ml,
   one per PR) and renders them oldest-first as a text table — or as
   CSV with --csv, for spreadsheets and CI artifacts.  Fields missing
   from older snapshots (the observability fields appear from PR 8 on)
   render as "-" / empty, so the tool keeps working across the whole
   history. *)

module Json = Manet_obs.Json

let usage () =
  prerr_endline "usage: benchtrend [--csv] BENCH_A.json BENCH_B.json ...";
  exit 2

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("benchtrend: " ^ m); exit 2) fmt

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> die "%s" e
  | text -> (
      match Json.parse text with
      | exception Json.Parse_error e -> die "%s: %s" path e
      | doc ->
          (match Json.member "schema" doc |> Option.map Json.to_string_opt with
          | Some (Some "manetsim-bench") -> ()
          | _ -> die "%s: not a manetsim-bench snapshot" path);
          doc)

let fopt doc name = Option.bind (Json.member name doc) Json.to_float_opt
let iopt doc name = Option.bind (Json.member name doc) Json.to_int_opt

let hot doc name =
  match Json.member "hot_paths" doc with
  | Some h -> Option.bind (Json.member name h) Json.to_float_opt
  | None -> None

(* One row per snapshot: (label, value-extractor, CSV formatter, text
   formatter).  Formatters must agree on units so the trend reads off
   either form. *)
let columns =
  [
    ("pr", fun d -> Option.map float_of_int (iopt d "pr"));
    ("host_cores", fun d -> Option.map float_of_int (iopt d "host_cores"));
    ("events_per_sec", fun d -> fopt d "events_per_sec");
    ("peak_heap_words", fun d -> fopt d "peak_heap_words");
    ("sha256_1k_ns", fun d -> hot d "sha256_1k_ns");
    ("rsa512_verify_ns", fun d -> hot d "rsa512_verify_ns");
    (* heap_push_pop_ns timed the allocating pop of the pre-PR-9 heap;
       heap_cycle_ns is its successor on the SoA heap (push / min_snd /
       drop_min).  Both stay as columns so the whole history renders. *)
    ("heap_push_pop_ns", fun d -> hot d "heap_push_pop_ns");
    ("heap_cycle_ns", fun d -> hot d "heap_cycle_ns");
    ("neighbour_scan_mean", fun d -> fopt d "neighbour_scan_mean");
    (* The flood-provenance fields appear from PR 10 on. *)
    ("neighbour_scan_p99", fun d -> fopt d "neighbour_scan_p99");
    ("gc_minor_words_per_event", fun d -> fopt d "gc_minor_words_per_event");
    ( "rsa_verifies_per_delivered_msg",
      fun d -> fopt d "rsa_verifies_per_delivered_msg" );
    ( "duplicate_verifies_per_flood",
      fun d -> fopt d "duplicate_verifies_per_flood" );
    ("flood_redundancy_ratio", fun d -> fopt d "flood_redundancy_ratio");
  ]

let render_value = function
  | None -> "-"
  | Some f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.3f" f

let csv_value = function None -> "" | Some f -> Printf.sprintf "%.6g" f

let () =
  let csv = ref false in
  let files = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--csv" -> csv := true
        | "--help" | "-h" -> usage ()
        | _ when String.length arg > 0 && arg.[0] = '-' ->
            die "unknown option %s" arg
        | _ -> files := arg :: !files)
    Sys.argv;
  let files = List.rev !files in
  if files = [] then usage ();
  let docs = List.map (fun p -> (p, load p)) files in
  (* Oldest first, by the snapshot's own pr number. *)
  let docs =
    List.stable_sort
      (fun (_, a) (_, b) ->
        compare (iopt a "pr") (iopt b "pr"))
      docs
  in
  if !csv then begin
    print_endline (String.concat "," ("file" :: List.map fst columns));
    List.iter
      (fun (path, d) ->
        print_endline
          (String.concat ","
             (path :: List.map (fun (_, get) -> csv_value (get d)) columns)))
      docs
  end
  else begin
    Printf.printf "%-30s" "metric";
    List.iter (fun (path, _) -> Printf.printf " %14s" (Filename.basename path)) docs;
    print_newline ();
    List.iter
      (fun (label, get) ->
        Printf.printf "%-30s" label;
        List.iter (fun (_, d) -> Printf.printf " %14s" (render_value (get d))) docs;
        print_newline ())
      columns
  end
