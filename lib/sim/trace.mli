(** Structured event traces.

    The Figure 2 / Figure 3 reproductions are *traces*: the benchmark
    harness runs the protocol scenario and prints the recorded message
    sequence so it can be compared against the paper's diagrams.  Tracing
    is off by default; experiments that need it switch it on. *)

type entry = {
  time : float;
  node : int;  (** acting node, or -1 for global events *)
  event : string;  (** short tag, e.g. ["areq.flood"] *)
  detail : string;  (** free-form context *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] caps memory use; the oldest entries are dropped beyond it
    (default 100_000). *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val log : t -> time:float -> node:int -> event:string -> detail:string -> unit
(** No-op while disabled. *)

val entries : t -> entry list
(** Oldest first. *)

val find : t -> event:string -> entry list
(** Entries whose [event] tag equals the argument, oldest first.
    Served from a per-tag index maintained on every push and ring drop,
    so a query over a 100k-entry trace costs O(matches), not O(n). *)

val fold : t -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** Single pass over all entries, oldest first, without materialising
    the {!entries} list — what report generators should use. *)

val clear : t -> unit
(** Empties the buffer and resets the {!dropped} count. *)

val length : t -> int

val dropped : t -> int
(** How many oldest entries the ring buffer has discarded since creation
    (or the last {!clear}) because [capacity] was reached. *)

val pp_entry : Format.formatter -> entry -> unit

val render : t -> string
(** Whole trace, one line per entry, preceded by a drop-count header
    line when any entries were discarded. *)
