(* Structure-of-arrays layout: priorities live in an unboxed float
   array and the two payload halves in their own arrays, so a push
   allocates nothing (no entry record, no payload tuple) and a pop
   returns nothing the caller must destructure.  The event loop reads
   the top entry field by field ([min_prio]/[min_fst]/[min_snd]) and
   then [drop_min]s it — zero allocation per event. *)

type ('a, 'b) t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable fsts : 'a array;
  mutable snds : 'b array;
  mutable len : int;
  mutable next_seq : int;
}

let create () =
  { prios = [||]; seqs = [||]; fsts = [||]; snds = [||]; len = 0; next_seq = 0 }

let is_empty h = h.len = 0
let size h = h.len

(* Both sifts carry the migrating element in locals (a hole): each
   level shifts one entry into the hole instead of 4-array-swapping,
   halving the stores per level, and the element is written exactly
   once at its final slot.  Indices are bounded by [len] (itself
   bounded by capacity), so the accesses use the unsafe primitives. *)
let place h i prio seq a b =
  Array.unsafe_set h.prios i prio;
  Array.unsafe_set h.seqs i seq;
  Array.unsafe_set h.fsts i a;
  Array.unsafe_set h.snds i b

let shift h i j =
  Array.unsafe_set h.prios i (Array.unsafe_get h.prios j);
  Array.unsafe_set h.seqs i (Array.unsafe_get h.seqs j);
  Array.unsafe_set h.fsts i (Array.unsafe_get h.fsts j);
  Array.unsafe_set h.snds i (Array.unsafe_get h.snds j)

let rec sift_up h i prio seq a b =
  if i = 0 then place h 0 prio seq a b
  else begin
    let parent = (i - 1) / 2 in
    let pp = Array.unsafe_get h.prios parent in
    if prio < pp || (prio = pp && seq < Array.unsafe_get h.seqs parent)
    then begin
      shift h i parent;
      sift_up h parent prio seq a b
    end
    else place h i prio seq a b
  end

let rec sift_down h i prio seq a b =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  if l >= h.len then place h i prio seq a b
  else begin
    let c =
      if r < h.len then begin
        let pl = Array.unsafe_get h.prios l
        and pr = Array.unsafe_get h.prios r in
        if
          pr < pl
          || (pr = pl && Array.unsafe_get h.seqs r < Array.unsafe_get h.seqs l)
        then r
        else l
      end
      else l
    in
    let pc = Array.unsafe_get h.prios c in
    if pc < prio || (pc = prio && Array.unsafe_get h.seqs c < seq) then begin
      shift h i c;
      sift_down h c prio seq a b
    end
    else place h i prio seq a b
  end

let grow h a b =
  let cap = Array.length h.prios in
  let ncap = if cap = 0 then 16 else cap * 2 in
  (* manethot: allow hot-alloc — capacity doubling: the backing arrays
     are reallocated O(log n) times over a run, amortized to nothing
     per push. *)
  let prios = Array.make ncap 0.0 and seqs = Array.make ncap 0 in
  (* manethot: allow hot-alloc — payload halves of the same amortized
     capacity doubling. *)
  let fsts = Array.make ncap a and snds = Array.make ncap b in
  Array.blit h.prios 0 prios 0 h.len;
  Array.blit h.seqs 0 seqs 0 h.len;
  Array.blit h.fsts 0 fsts 0 h.len;
  Array.blit h.snds 0 snds 0 h.len;
  h.prios <- prios;
  h.seqs <- seqs;
  h.fsts <- fsts;
  h.snds <- snds

let push h prio a b =
  if h.len = Array.length h.prios then grow h a b;
  let i = h.len in
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.len <- i + 1;
  sift_up h i prio seq a b

let min_prio h =
  if h.len = 0 then invalid_arg "Heap.min_prio: empty heap";
  h.prios.(0)

let min_fst h =
  if h.len = 0 then invalid_arg "Heap.min_fst: empty heap";
  h.fsts.(0)

let min_snd h =
  if h.len = 0 then invalid_arg "Heap.min_snd: empty heap";
  h.snds.(0)

let drop_min h =
  if h.len = 0 then invalid_arg "Heap.drop_min: empty heap";
  let n = h.len - 1 in
  h.len <- n;
  if n > 0 then sift_down h 0 h.prios.(n) h.seqs.(n) h.fsts.(n) h.snds.(n)
