(* benchgate — the perf regression gate.

   Usage: main.exe PREV.json CUR.json [--threshold 0.2] [--strict]

   Compares two manetsim-bench snapshots (bench/perf_bench.ml): the
   fresh one must not lose more than THRESHOLD of the committed
   baseline's events_per_sec, and no shared hot-path ns/op may grow by
   more than THRESHOLD.  When the two snapshots come from machines with
   different core counts the numbers are not comparable, so the gate
   reports informationally and exits 0 unless --strict is given. *)

module Json = Manet_obs.Json

let usage () =
  prerr_endline
    "usage: benchgate PREV.json CUR.json [--threshold FRACTION] [--strict]";
  exit 2

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("benchgate: " ^ m); exit 2) fmt

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> die "%s" e
  | text -> (
      match Json.parse text with
      | exception Json.Parse_error e -> die "%s: %s" path e
      | doc ->
          (match Json.member "schema" doc |> Option.map Json.to_string_opt with
          | Some (Some "manetsim-bench") -> ()
          | _ -> die "%s: not a manetsim-bench snapshot" path);
          doc)

let float_field path doc name =
  match Json.member name doc |> Option.map Json.to_float_opt with
  | Some (Some f) -> f
  | _ -> die "%s: missing numeric field %s" path name

let int_field path doc name =
  match Json.member name doc |> Option.map Json.to_int_opt with
  | Some (Some i) -> i
  | _ -> die "%s: missing integer field %s" path name

let hot_paths path doc =
  match Json.member "hot_paths" doc with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (name, v) ->
          Option.map (fun f -> (name, f)) (Json.to_float_opt v))
        fields
  | _ -> die "%s: missing hot_paths object" path

let () =
  let threshold = ref 0.2 in
  let strict = ref false in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--strict" :: rest ->
        strict := true;
        parse_args rest
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f > 0.0 && f < 1.0 ->
            threshold := f;
            parse_args rest
        | _ -> die "--threshold wants a fraction in (0, 1), got %s" v)
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
        files := arg :: !files;
        parse_args rest
    | arg :: _ -> die "unknown option %s" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let prev_path, cur_path =
    match List.rev !files with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let prev = load prev_path and cur = load cur_path in
  let prev_cores = int_field prev_path prev "host_cores"
  and cur_cores = int_field cur_path cur "host_cores" in
  let comparable = prev_cores = cur_cores in
  let regressions = ref [] in
  let check name ~prev_v ~cur_v ~worse_when_lower =
    let ratio =
      if worse_when_lower then 1.0 -. (cur_v /. prev_v)
      else (cur_v /. prev_v) -. 1.0
    in
    let verdict =
      if ratio > !threshold then (
        regressions := name :: !regressions;
        "REGRESSION")
      else "ok"
    in
    Printf.printf "%-22s prev %14.2f  cur %14.2f  %+6.1f%%  %s\n" name prev_v
      cur_v
      ((cur_v /. prev_v -. 1.0) *. 100.0)
      verdict
  in
  Printf.printf "benchgate: %s (pr %d, %d core(s)) vs %s (pr %d, %d core(s))\n"
    prev_path (int_field prev_path prev "pr") prev_cores cur_path
    (int_field cur_path cur "pr") cur_cores;
  check "events_per_sec"
    ~prev_v:(float_field prev_path prev "events_per_sec")
    ~cur_v:(float_field cur_path cur "events_per_sec")
    ~worse_when_lower:true;
  let prev_hot = hot_paths prev_path prev and cur_hot = hot_paths cur_path cur in
  List.iter
    (fun (name, prev_v) ->
      match List.assoc_opt name cur_hot with
      | Some cur_v -> check name ~prev_v ~cur_v ~worse_when_lower:false
      | None -> Printf.printf "%-22s dropped from current snapshot\n" name)
    prev_hot;
  match (!regressions, comparable, !strict) with
  | [], _, _ ->
      Printf.printf "benchgate: ok (threshold %.0f%%)\n" (!threshold *. 100.0)
  | rs, false, false ->
      Printf.printf
        "benchgate: %d regression(s) IGNORED: host core counts differ (%d vs \
         %d); rerun on the reference machine or pass --strict\n"
        (List.length rs) prev_cores cur_cores
  | rs, _, _ ->
      Printf.printf "benchgate: %d regression(s) beyond %.0f%%: %s\n"
        (List.length rs)
        (!threshold *. 100.0)
        (String.concat ", " (List.rev rs));
      exit 1
