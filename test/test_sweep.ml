(* The multicore sweep contract: Parallel.map is order- and
   domain-count-invariant with exception safety, and merged sweep
   exports are byte-identical at any domain count (the property CI also
   checks end-to-end through the CLI). *)

module Parallel = Manet_sim.Parallel
module Merge = Manetsec.Merge
module Sweep = Manetsec.Sweep
module Json = Manetsec.Obs_json

let test_map_order () =
  let xs = List.init 37 (fun i -> i) in
  let expect = List.map (fun i -> i * i) xs in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "input order preserved at %d domain(s)" domains)
        expect
        (Parallel.map ~domains (fun i -> i * i) xs))
    [ 1; 2; 4; 16 ];
  Alcotest.(check (list int)) "empty input" [] (Parallel.map ~domains:4 (fun i -> i) []);
  Alcotest.(check (list int))
    "more domains than tasks" [ 10 ]
    (Parallel.map ~domains:8 (fun i -> i * 10) [ 1 ])

exception Boom of int

let test_map_exception () =
  List.iter
    (fun domains ->
      let ran = Atomic.make 0 in
      (try
         ignore
           (Parallel.map ~domains
              (fun i ->
                Atomic.incr ran;
                if i mod 3 = 1 then raise (Boom i) else i)
              (List.init 9 (fun i -> i)))
       with Boom i ->
         (* First failure in input order, regardless of scheduling. *)
         Alcotest.(check int)
           (Printf.sprintf "first raiser wins at %d domain(s)" domains)
           1 i);
      (* Every task ran: all domains were joined before the re-raise. *)
      Alcotest.(check int)
        (Printf.sprintf "all tasks ran at %d domain(s)" domains)
        9 (Atomic.get ran))
    [ 1; 3 ]

(* A grid small enough for the test suite but covering both
   experiments and two seeds. *)
let spec =
  {
    Sweep.e1_fractions = [ 0.2 ];
    e1_nodes = 16;
    e1_duration = 5.0;
    e6_sizes = [ 8 ];
    seeds = [ 1; 2 ];
  }

let test_sweep_deterministic () =
  let export runs =
    ( Merge.stats_csv runs,
      Merge.stream_jsonl ~name:"audit" runs,
      Merge.stream_jsonl ~name:"trace" runs )
  in
  let base = export (Sweep.run ~domains:1 spec) in
  List.iter
    (fun domains ->
      let s0, a0, t0 = base in
      let s, a, t = export (Sweep.run ~domains spec) in
      let tag what =
        Printf.sprintf "%s byte-identical at %d domain(s)" what domains
      in
      Alcotest.(check string) (tag "stats csv") s0 s;
      Alcotest.(check string) (tag "audit jsonl") a0 a;
      Alcotest.(check string) (tag "trace jsonl") t0 t)
    [ 2; 4 ]

let test_sweep_artifacts () =
  let runs = Sweep.run ~domains:2 spec in
  Alcotest.(check int) "one run per grid point"
    (List.length (Sweep.points spec))
    (List.length runs);
  List.iter
    (fun r ->
      Alcotest.(check (list string))
        "uniform key fields"
        [ "experiment"; "n"; "fraction"; "seed" ]
        (List.map fst r.Merge.key);
      Alcotest.(check bool) "stats non-empty" true (r.Merge.stats <> []);
      List.iter
        (fun stream ->
          match List.assoc_opt stream r.Merge.streams with
          | None -> Alcotest.failf "missing %s stream" stream
          | Some text ->
              (* Every stream starts with a parseable header line. *)
              let header =
                match String.index_opt text '\n' with
                | Some i -> String.sub text 0 i
                | None -> text
              in
              ignore (Json.parse header))
        [ "audit"; "trace" ])
    runs;
  (* The merged stream header counts the runs. *)
  let merged = Merge.stream_jsonl ~name:"audit" runs in
  let first_line =
    String.sub merged 0 (String.index merged '\n')
  in
  match Json.member "runs" (Json.parse first_line) with
  | Some (Json.Int n) ->
      Alcotest.(check int) "merged header run count" (List.length runs) n
  | _ -> Alcotest.fail "merged header lacks runs field"

let test_merge_ordering () =
  (* Numeric key fields sort numerically, not lexically, and the merge
     is insensitive to input order. *)
  let mk seed =
    {
      Merge.key = [ ("experiment", Json.String "e1"); ("seed", Json.Int seed) ];
      stats = [ ("x", seed) ];
      streams = [ ("audit", "{\"h\":" ^ string_of_int seed ^ "}\n") ];
    }
  in
  let runs = [ mk 10; mk 2; mk 1 ] in
  let seeds_of rs =
    List.map
      (fun r ->
        match List.assoc "seed" r.Merge.key with Json.Int s -> s | _ -> -1)
      rs
  in
  Alcotest.(check (list int)) "canonical numeric order" [ 1; 2; 10 ]
    (seeds_of (Merge.sorted runs));
  Alcotest.(check string) "merge independent of input order"
    (Merge.stream_jsonl ~name:"audit" runs)
    (Merge.stream_jsonl ~name:"audit" (List.rev runs));
  Alcotest.check_raises "missing stream refuses to merge"
    (Invalid_argument "Merge.stream_jsonl: run 0 has no \"trace\" stream")
    (fun () -> ignore (Merge.stream_jsonl ~name:"trace" [ mk 1 ]))

let suites =
  [
    ( "sweep",
      [
        Alcotest.test_case "parallel map order" `Quick test_map_order;
        Alcotest.test_case "parallel map exceptions" `Quick test_map_exception;
        Alcotest.test_case "merge ordering" `Quick test_merge_ordering;
        Alcotest.test_case "sweep artifacts" `Quick test_sweep_artifacts;
        Alcotest.test_case "sweep byte-determinism" `Slow test_sweep_deterministic;
      ] );
  ]
