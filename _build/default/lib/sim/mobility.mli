(** Node mobility models.

    A mobility process updates topology positions on a fixed tick.  The
    standard MANET evaluation model is random waypoint: each node picks a
    uniform destination, travels at a uniform speed, pauses, repeats. *)

type model =
  | Static  (** no movement *)
  | Random_waypoint of { min_speed : float; max_speed : float; pause : float }
      (** speeds in distance units per second, pause in seconds *)
  | Random_walk of { speed : float; turn_interval : float }
      (** constant speed, new uniform heading every [turn_interval];
          reflects off field edges *)

type t

val create :
  ?tick:float -> Engine.t -> Topology.t -> Manet_crypto.Prng.t -> model -> t
(** [create engine topo rng model] prepares the process ([tick] defaults
    to 0.5 simulated seconds). *)

val start : t -> unit
(** Schedule the first movement tick.  Idempotent. *)

val stop : t -> unit
(** Stop scheduling further ticks (in-flight ticks fall out naturally). *)
