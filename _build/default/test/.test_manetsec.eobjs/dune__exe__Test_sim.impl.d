test/test_sim.ml: Alcotest Array List Manet_crypto Manet_sim Option QCheck QCheck_alcotest
