(* Self-tests for manetsem, the AST-level analyzer: every rule family
   must fire on a synthetic bad input, stay quiet on the matching good
   input, and honour its suppression annotation.  Fixtures live in
   string literals, so manetlint's lexical pass never sees them. *)

module Sem = Manetsem.Sem

let count ?uses rule files =
  List.length
    (List.filter (fun f -> f.Sem.rule = rule) (Sem.analyze ?uses files))

let fires ?uses name rule files =
  Alcotest.(check bool) name true (count ?uses rule files > 0)

let clean ?uses name rule files =
  Alcotest.(check int) name 0 (count ?uses rule files)

(* --- taint: verify-before-use ------------------------------------------ *)

let test_taint_fires () =
  fires "unverified signed payload reaches a named sink" "taint"
    [
      ( "lib/x/h.ml",
        {|let consume t msg =
  match msg with
  | Messages.Arep p ->
      Route_cache.insert t.cache ~dst:p ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
      );
    ];
  fires "Hashtbl.replace on a protocol state field" "taint"
    [
      ( "lib/x/h.ml",
        {|let consume t msg =
  match msg with Messages.Name_reply n -> Hashtbl.replace t.table n n | _ -> ()|}
      );
    ];
  fires "mutation of a protocol state field" "taint"
    [
      ( "lib/x/h.ml",
        {|let consume t msg =
  match msg with Messages.Drep d -> t.trusted <- d | _ -> ()|}
      );
    ];
  (* The taint must survive one call-graph hop: a helper that reaches a
     sink makes its (unverified) callers findings too. *)
  fires "sink reached through a helper function" "taint"
    [
      ( "lib/x/h.ml",
        {|let remember t p = Route_cache.insert t.cache ~dst:p ~route:[] ~meta:() ~now:0.
let consume t msg =
  match msg with Messages.Rrep p -> remember t p | _ -> ()|}
      );
    ]

let test_taint_not_a_source () =
  (* Areq is unsigned — destructuring it is not a taint source. *)
  clean "unsigned constructor payload" "taint"
    [
      ( "lib/x/h.ml",
        {|let consume t msg =
  match msg with
  | Messages.Areq a ->
      Route_cache.insert t.cache ~dst:a ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
      );
    ];
  (* A bare [Ctor _] dispatch pattern binds nothing of the payload. *)
  clean "pattern that binds no payload" "taint"
    [
      ( "lib/x/h.ml",
        {|let consume t x =
  match t.last with
  | Messages.Arep _ ->
      Route_cache.insert t.cache ~dst:x ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
      );
    ]

let test_taint_verified_ok () =
  clean "verify in the case guard blesses the body" "taint"
    [
      ( "lib/x/h.ml",
        {|let consume t msg =
  match msg with
  | Messages.Arep p when Suite.verify t.suite p ->
      Route_cache.insert t.cache ~dst:p ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
      );
    ];
  clean "verify in an if condition blesses the branch" "taint"
    [
      ( "lib/x/h.ml",
        {|let consume t msg =
  match msg with
  | Messages.Drep p ->
      if Cga.verify p then
        Route_cache.insert t.cache ~dst:p ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
      );
    ];
  (* The verifier fixpoint: a helper whose body calls verify counts. *)
  clean "verification through a helper function" "taint"
    [
      ( "lib/x/h.ml",
        {|let check_arep t p = Suite.verify t.suite p
let consume t msg =
  match msg with
  | Messages.Arep p when check_arep t p ->
      Route_cache.insert t.cache ~dst:p ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
      );
    ];
  (* SRP verifies by MAC recomputation: *_mac helpers are verifiers. *)
  clean "MAC recomputation counts as verification" "taint"
    [
      ( "lib/x/h.ml",
        {|let rrep_mac t p = Suite.mac t.key p
let consume t msg =
  match msg with
  | Messages.Rrep p when String.equal (rrep_mac t p) p ->
      Route_cache.insert t.cache ~dst:p ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
      );
    ]

(* The ISSUE acceptance check, as a fixture pair: a handler modelled on
   Dad.consume_arep passes with its verify guard and fails the moment
   the guard is deleted. *)
let test_taint_verify_deletion_regression () =
  let with_verify =
    {|let verify_arep t ~sig_ ~pk = Suite.verify t.suite ~sig_ ~pk
let consume_arep t msg =
  match msg with
  | Messages.Arep (sig_, pk) when verify_arep t ~sig_ ~pk ->
      Route_cache.insert t.cache ~dst:pk ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
  in
  let without_verify =
    {|let consume_arep t msg =
  match msg with
  | Messages.Arep (sig_, pk) ->
      ignore sig_;
      Route_cache.insert t.cache ~dst:pk ~route:[] ~meta:() ~now:0.
  | _ -> ()|}
  in
  clean "handler with verify guard" "taint" [ ("lib/dad/h.ml", with_verify) ];
  fires "same handler, verify deleted" "taint"
    [ ("lib/dad/h.ml", without_verify) ]

(* --- dispatch coverage -------------------------------------------------- *)

let msgs_mli =
  ( "lib/proto/messages.mli",
    "type t = Areq | Arep of string | Rreq of int | Data of string\n" )

let test_dispatch () =
  fires "catch-all arm in a dispatch dir" "dispatch"
    [
      msgs_mli;
      ( "lib/dad/h.ml",
        {|let handle t msg = match msg with Areq -> ignore t | _ -> ()|} );
    ];
  fires "missing constructor, no catch-all" "dispatch"
    [
      msgs_mli;
      ( "lib/dsr/h.ml",
        {|let handle t msg =
  match msg with
  | Areq -> ignore t
  | Arep _ -> ()
  | Rreq _ -> ()|}
      );
    ];
  clean "full enumeration" "dispatch"
    [
      msgs_mli;
      ( "lib/secure/h.ml",
        {|let handle t msg =
  match msg with
  | Areq -> ignore t
  | Arep _ -> ()
  | Rreq _ -> ()
  | Data _ -> ()|}
      );
    ];
  clean "catch-all outside the dispatch dirs" "dispatch"
    [
      msgs_mli;
      ( "lib/sim/h.ml",
        {|let handle t msg = match msg with Areq -> ignore t | _ -> ()|} );
    ];
  clean "function not named handle" "dispatch"
    [
      msgs_mli;
      ( "lib/dad/h.ml",
        {|let process t msg = match msg with Areq -> ignore t | _ -> ()|} );
    ]

(* --- codec pairing ------------------------------------------------------ *)

let codec_mli = ("lib/proto/codec.mli", "val areq_payload : string -> string\n")

let sign_use =
  {|let sign_it suite p = Suite.sign suite (Codec.areq_payload p)|}

let verify_use =
  {|let verify_it suite p s = Suite.verify suite (Codec.areq_payload p) s|}

let test_codec () =
  clean "builder signed and verified" "codec"
    [ codec_mli; ("lib/x/a.ml", sign_use ^ "\n" ^ verify_use) ];
  fires "builder never verified" "codec" [ codec_mli; ("lib/x/a.ml", sign_use) ];
  fires "builder never signed" "codec" [ codec_mli; ("lib/x/a.ml", verify_use) ];
  fires "orphan builder" "codec" [ codec_mli; ("lib/x/a.ml", "let z = 1\n") ]

(* --- semantic determinism ----------------------------------------------- *)

let test_determinism () =
  fires "wall-clock read" "determinism"
    [ ("lib/a.ml", {|let now () = Unix.gettimeofday ()|}) ];
  fires "Hashtbl.iter leaks bucket order" "determinism"
    [
      ( "lib/a.ml",
        {|let dump tbl = Hashtbl.iter (fun k v -> print_string k; print_int v) tbl|}
      );
    ];
  fires "unordered Hashtbl.fold" "determinism"
    [ ("lib/a.ml", {|let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []|}) ];
  clean "fold into a sort" "determinism"
    [
      ( "lib/a.ml",
        {|let keys tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])|}
      );
    ];
  clean "commutative fold" "determinism"
    [ ("lib/a.ml", {|let total tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0|}) ];
  fires "top-level mutable state" "determinism"
    [ ("lib/a.ml", {|let cache = Hashtbl.create 16|}) ];
  clean "function-local mutable state" "determinism"
    [ ("lib/a.ml", {|let f () = let h = Hashtbl.create 16 in Hashtbl.length h|}) ]

(* --- dead exports ------------------------------------------------------- *)

let util = [ ("lib/util.mli", "val helper : int -> int\n"); ("lib/util.ml", "let helper x = x + 1\n") ]

let test_dead_export () =
  fires "unreferenced export" "dead-export" util;
  clean "referenced from a use-site file" "dead-export" util
    ~uses:[ ("bin/main.ml", "let () = print_int (Util.helper 1)\n") ];
  clean "referenced from a sibling lib module" "dead-export"
    (util @ [ ("lib/other.ml", "let y = Util.helper 3\n") ]);
  (* A module using its own export keeps it dead. *)
  fires "intra-module use does not count" "dead-export"
    [
      ("lib/util.mli", "val helper : int -> int\n");
      ("lib/util.ml", "let helper x = x + 1\nlet double x = helper (helper x)\n");
    ];
  (* A stale local alias in an unrelated file must not capture a direct
     sibling reference (the bin-aliases-Json regression). *)
  clean "unrelated alias does not shadow a real module" "dead-export"
    (util @ [ ("lib/other.ml", "let y = Util.helper 3\n") ])
    ~uses:[ ("bin/main.ml", "module Util = Manetsec.Helpers\nlet () = ()\n") ]

(* --- suppression -------------------------------------------------------- *)

let test_suppression () =
  clean "allow on the line above" "determinism"
    [
      ( "lib/a.ml",
        "(* manetsem: allow determinism -- wall clock ok here *)\n\
         let now () = Unix.gettimeofday ()\n" );
    ];
  (* A multi-line comment anchors to its last line. *)
  clean "multi-line allow reaches the next line" "determinism"
    [
      ( "lib/a.ml",
        "(* manetsem: allow determinism --\n\
        \   a longer rationale spanning lines *)\n\
         let now () = Unix.gettimeofday ()\n" );
    ];
  fires "a blank line breaks the anchor" "determinism"
    [
      ( "lib/a.ml",
        "(* manetsem: allow determinism *)\n\nlet now () = Unix.gettimeofday ()\n"
      );
    ];
  fires "allow for another rule does not apply" "determinism"
    [
      ( "lib/a.ml",
        "(* manetsem: allow taint *)\nlet now () = Unix.gettimeofday ()\n" );
    ];
  clean "allow-file" "determinism"
    [
      ( "lib/a.ml",
        "(* manetsem: allow-file determinism *)\n\n\
         let now () = Unix.gettimeofday ()\n" );
    ];
  (* Legacy-grammar pins: the move onto the shared analyzer runtime
     must not tighten manetsem's historical allow grammar.  A rationale
     stays optional (unlike manethot/manetdom)... *)
  clean "rationale-free allow still suppresses" "determinism"
    [
      ( "lib/a.ml",
        "(* manetsem: allow determinism *)\nlet now () = Unix.gettimeofday ()\n"
      );
    ];
  (* ...and the directive must still open the comment: one buried
     mid-prose is ignored rather than honoured. *)
  fires "mid-comment directive is still ignored" "determinism"
    [
      ( "lib/a.ml",
        "(* see also: manetsem: allow determinism *)\n\
         let now () = Unix.gettimeofday ()\n" );
    ]

(* --- baseline semantics ------------------------------------------------- *)

let clock_fixture = [ ("lib/a.ml", "let now () = Unix.gettimeofday ()\n") ]

let test_baseline () =
  let fs = Sem.analyze clock_fixture in
  Alcotest.(check bool) "fixture produces findings" true (fs <> []);
  let fresh, stale = Sem.diff_baseline ~baseline:[] fs in
  Alcotest.(check int) "everything fresh against empty baseline"
    (List.length fs) (List.length fresh);
  Alcotest.(check int) "no stale entries against empty baseline" 0
    (List.length stale);
  (* Pinning suppresses, and regeneration is a no-op: rendering the
     current findings and diffing against the parse of that rendering
     yields nothing fresh and nothing stale (baseline minimality). *)
  let pinned = Sem.parse_baseline (Sem.render_baseline fs) in
  let fresh, stale = Sem.diff_baseline ~baseline:pinned fs in
  Alcotest.(check int) "pinned findings are not fresh" 0 (List.length fresh);
  Alcotest.(check int) "rendered baseline has no stale keys" 0
    (List.length stale);
  (* An entry that no longer fires is itself an error. *)
  let fresh, stale =
    Sem.diff_baseline ~baseline:(pinned @ [ "lib/gone.ml|taint|old" ]) fs
  in
  Alcotest.(check int) "no fresh findings" 0 (List.length fresh);
  Alcotest.(check (list string)) "stale key reported"
    [ "lib/gone.ml|taint|old" ] stale

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json () =
  let fs = Sem.analyze clock_fixture in
  let js = Sem.to_json ~baseline:[] fs in
  Alcotest.(check bool) "unbaselined finding flagged false" true
    (contains js "\"baselined\":false");
  let pinned = Sem.parse_baseline (Sem.render_baseline fs) in
  let js = Sem.to_json ~baseline:pinned fs in
  Alcotest.(check bool) "baselined finding flagged true" true
    (contains js "\"baselined\":true")

(* --- parse failures ----------------------------------------------------- *)

let test_parse_rule () =
  fires "unparseable file is a finding" "parse"
    [ ("lib/bad.ml", "let let let = (((\n") ];
  clean "parse failures in use-site files are tolerated" "parse"
    [ ("lib/ok.ml", "let x = 1\n") ]
    ~uses:[ ("bin/bad.ml", "let let let = (((\n") ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "manetsem",
      [
        tc "taint fires" test_taint_fires;
        tc "taint non-sources" test_taint_not_a_source;
        tc "taint verified ok" test_taint_verified_ok;
        tc "taint verify-deletion regression" test_taint_verify_deletion_regression;
        tc "dispatch" test_dispatch;
        tc "codec" test_codec;
        tc "determinism" test_determinism;
        tc "dead-export" test_dead_export;
        tc "suppression" test_suppression;
        tc "baseline" test_baseline;
        tc "json" test_json;
        tc "parse rule" test_parse_rule;
      ] );
  ]
