module Address = Manet_ipv6.Address

let addr = Address.to_bytes

let u32 v =
  String.init 4 (fun i -> Char.chr ((v lsr ((3 - i) * 8)) land 0xFF))

let u64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v ((7 - i) * 8)) 0xFFL)))

let lstring s =
  let len = String.length s in
  if len > 0xFFFF then invalid_arg "Codec.lstring: too long";
  String.init 2 (fun i -> Char.chr ((len lsr ((1 - i) * 8)) land 0xFF)) ^ s

let route rr = u32 (List.length rr) ^ String.concat "" (List.map addr rr)

let arep_payload ~sip ~ch = "AREP|" ^ addr sip ^ u64 ch
let drep_payload ~dn ~ch = "DREP|" ^ lstring dn ^ u64 ch
let rreq_source_payload ~sip ~seq = "RREQ|" ^ addr sip ^ u32 seq
let srr_entry_payload ~iip ~seq = "SRRE|" ^ addr iip ^ u32 seq
let rrep_payload ~sip ~seq ~rr = "RREP|" ^ addr sip ^ u32 seq ^ route rr

let crep_cacher_payload ~requester ~seq ~rr =
  "CREP|" ^ addr requester ^ u32 seq ^ route rr

let rerr_payload ~reporter ~broken_next =
  "RERR|" ^ addr reporter ^ addr broken_next

let probe_reply_payload ~responder ~origin ~seq =
  "PRBR|" ^ addr responder ^ addr origin ^ u32 seq

let name_reply_payload ~name ~result ~ch =
  "NAMR|" ^ lstring name
  ^ (match result with None -> "\x00" | Some a -> "\x01" ^ addr a)
  ^ u64 ch

let ip_change_payload ~old_ip ~new_ip ~ch =
  "IPCH|" ^ addr old_ip ^ addr new_ip ^ u64 ch
