(* Sign-magnitude bignums over 26-bit limbs stored little-endian in int
   arrays.  26 bits keeps every intermediate product (2^52) and the
   double-limb dividends of Knuth division well inside OCaml's 63-bit
   native integers.

   manethot: allow-file hot-alloc hot-poly — arbitrary-precision
   arithmetic allocates a fresh limb array per result by design (values
   are immutable, and the working refs/loops below are the limb-school
   algorithms themselves); the verify path pays for one modular
   exponentiation per signature, which the perf registry accounts as a
   single crypto op, so per-limb allocation here is not a per-event
   cost. *)

let base_bits = 26
let base = 1 lsl base_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: sign is -1, 0 or 1; mag has no trailing (high-order) zero
   limb; sign = 0 iff mag is empty. *)

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i < 0 then -1 else 1 in
    let v = ref (abs i) in
    let limbs = ref [] in
    while !v > 0 do
      limbs := (!v land limb_mask) :: !limbs;
      v := !v lsr base_bits
    done;
    { sign; mag = Array.of_list (List.rev !limbs) }
  end

(* manetdom: allow toplevel-state — interned constants: a bignum's limb
   array is never written after construction (every operation allocates
   a fresh magnitude), so sharing [one]/[two] across domains is
   read-only sharing. *)
let one = of_int 1

(* manetdom: allow toplevel-state — same read-only bignum-constant
   argument as [one] above. *)
let two = of_int 2

let sign n = n.sign
let numbits_of_limb l =
  let rec go l acc = if l = 0 then acc else go (l lsr 1) (acc + 1) in
  go l 0

let numbits n =
  let len = Array.length n.mag in
  if len = 0 then 0
  else ((len - 1) * base_bits) + numbits_of_limb n.mag.(len - 1)

let to_int_opt n =
  if numbits n <= 62 then begin
    let v = ref 0 in
    for i = Array.length n.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor n.mag.(i)
    done;
    Some (n.sign * !v)
  end
  else None

(* --- magnitude primitives ------------------------------------------- *)

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  r

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let mul_mag_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- v land limb_mask;
        carry := v lsr base_bits
      done;
      (* Propagate the final carry; it can exceed one limb only when the
         accumulated column overflows, which a single limb absorbs here
         because ai*bj + r + carry < 2^52 + 2^27. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land limb_mask;
        carry := v lsr base_bits;
        incr k
      done
    done;
    r
  end

let karatsuba_threshold = 32

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if min la lb < karatsuba_threshold then mul_mag_school a b
  else begin
    (* Karatsuba: split at half of the shorter operand's partner. *)
    let m = max la lb / 2 in
    let lo x = Array.sub x 0 (min m (Array.length x)) in
    let hi x =
      if Array.length x <= m then [||] else Array.sub x m (Array.length x - m)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let s_a = add_mag a0 a1 and s_b = add_mag b0 b1 in
    let z1 = mul_mag s_a s_b in
    (* z1 := z1 - z0 - z2 *)
    let z1 = sub_mag z1 z0 in
    let z1 = sub_mag z1 z2 in
    let r = Array.make (la + lb + 1) 0 in
    let accumulate dst off src =
      let carry = ref 0 in
      Array.iteri
        (fun i v ->
          let s = dst.(off + i) + v + !carry in
          dst.(off + i) <- s land limb_mask;
          carry := s lsr base_bits)
        src;
      let k = ref (off + Array.length src) in
      while !carry <> 0 do
        let s = dst.(!k) + !carry in
        dst.(!k) <- s land limb_mask;
        carry := s lsr base_bits;
        incr k
      done
    in
    accumulate r 0 z0;
    accumulate r m z1;
    accumulate r (2 * m) z2;
    r
  end

let shift_left_mag a s =
  (* s arbitrary non-negative bit count *)
  if Array.length a = 0 then [||]
  else begin
    let limb_shift = s / base_bits and bit_shift = s mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 r limb_shift la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- v land limb_mask;
        carry := v lsr base_bits
      done;
      r.(la + limb_shift) <- !carry
    end;
    r
  end

let shift_right_mag a s =
  let limb_shift = s / base_bits and bit_shift = s mod base_bits in
  let la = Array.length a in
  if limb_shift >= la then [||]
  else begin
    let n = la - limb_shift in
    let r = Array.make n 0 in
    if bit_shift = 0 then Array.blit a limb_shift r 0 n
    else
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if i + limb_shift + 1 < la then
            (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land limb_mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
    r
  end

(* Knuth TAOCP vol 2, algorithm D, with the exposition of Hacker's
   Delight's divmnu.  Requires |u| >= |v| and |v| >= 2 limbs.  Returns
   (quotient, remainder) magnitudes. *)
let divmod_mag_knuth u v =
  let n = Array.length v in
  let m = Array.length u in
  (* Normalize so the divisor's top limb has its high bit set. *)
  let s = base_bits - numbits_of_limb v.(n - 1) in
  let vn = shift_right_mag (shift_left_mag v s) 0 in
  let vn = if Array.length vn > n then Array.sub vn 0 n else vn in
  let un = shift_left_mag u s in
  let un =
    (* ensure un has exactly m+1 limbs *)
    if Array.length un >= m + 1 then Array.sub un 0 (m + 1)
    else begin
      let r = Array.make (m + 1) 0 in
      Array.blit un 0 r 0 (Array.length un);
      r
    end
  in
  let q = Array.make (m - n + 1) 0 in
  for j = m - n downto 0 do
    let num = (un.(j + n) * base) + un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) in
    let rhat = ref (num mod vn.(n - 1)) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base || !qhat * vn.(n - 2) > (!rhat * base) + un.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* Multiply and subtract. *)
    let k = ref 0 in
    let t = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * vn.(i) in
      t := un.(i + j) - !k - (p land limb_mask);
      un.(i + j) <- !t land limb_mask;
      k := (p lsr base_bits) - (!t asr base_bits)
    done;
    t := un.(j + n) - !k;
    un.(j + n) <- !t land limb_mask;
    q.(j) <- !qhat;
    if !t < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      q.(j) <- q.(j) - 1;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let w = un.(i + j) + vn.(i) + !carry in
        un.(i + j) <- w land limb_mask;
        carry := w lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry) land limb_mask
    end
  done;
  let r = shift_right_mag (Array.sub un 0 n) s in
  (q, r)

let divmod_mag_single u v0 =
  let lu = Array.length u in
  let q = Array.make lu 0 in
  let r = ref 0 in
  for i = lu - 1 downto 0 do
    let cur = (!r * base) + u.(i) in
    q.(i) <- cur / v0;
    r := cur mod v0
  done;
  (q, [| !r |])

let divmod_mag u v =
  if Array.length v = 0 then raise Division_by_zero
  else if compare_mag u v < 0 then ([||], u)
  else if Array.length v = 1 then divmod_mag_single u v.(0)
  else divmod_mag_knuth u v

(* --- signed operations ----------------------------------------------- *)

let neg n = if n.sign = 0 then n else { n with sign = -n.sign }
let abs n = if n.sign < 0 then neg n else n

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

and sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q_mag, r_mag = divmod_mag a.mag b.mag in
  let q = normalize (a.sign * b.sign) q_mag in
  let r = normalize a.sign r_mag in
  (q, r)

let rem a b = snd (divmod a b)

let mod_ a m =
  if m.sign <= 0 then invalid_arg "Bignum.mod_: modulus must be positive";
  let r = rem a m in
  if r.sign < 0 then add r m else r

let shift_left n s =
  if s < 0 then invalid_arg "Bignum.shift_left";
  if n.sign = 0 then zero else normalize n.sign (shift_left_mag n.mag s)

let shift_right n s =
  if s < 0 then invalid_arg "Bignum.shift_right";
  if n.sign = 0 then zero else normalize n.sign (shift_right_mag n.mag s)

let testbit n i =
  let limb = i / base_bits and bit = i mod base_bits in
  limb < Array.length n.mag && (n.mag.(limb) lsr bit) land 1 = 1

(* --- conversions ------------------------------------------------------ *)

let of_bytes_be s =
  let acc = ref zero in
  String.iter
    (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c)))
    s;
  !acc

let to_bytes_be ?(pad = 0) n =
  let nb = numbits n in
  let len = max pad ((nb + 7) / 8) in
  let len = max len 1 in
  let b = Bytes.make len '\000' in
  for i = 0 to len - 1 do
    let bit = (len - 1 - i) * 8 in
    let byte = ref 0 in
    for j = 7 downto 0 do
      byte := (!byte lsl 1) lor (if testbit n (bit + j) then 1 else 0)
    done;
    Bytes.set b i (Char.chr !byte)
  done;
  Bytes.unsafe_to_string b

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bignum.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start = len then invalid_arg "Bignum.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bignum.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !acc else !acc

let to_string n =
  if n.sign = 0 then "0"
  else begin
    (* Peel 7 decimal digits at a time with single-limb division. *)
    let chunk = 10_000_000 in
    let buf = Buffer.create 32 in
    let mag = ref (abs n) in
    let parts = ref [] in
    while !mag.sign <> 0 do
      let q, r = divmod_mag !mag.mag [| chunk |] in
      let r0 = if Array.length r = 0 then 0 else r.(0) in
      parts := r0 :: !parts;
      mag := normalize 1 q
    done;
    (match !parts with
    | [] -> ()
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%07d" p)) rest);
    (if n.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_hex s =
  let acc = ref zero in
  String.iter
    (fun c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Bignum.of_hex: bad digit"
      in
      acc := add (shift_left !acc 4) (of_int v))
    s;
  !acc

let to_hex n =
  if n.sign = 0 then "0"
  else begin
    let nb = numbits n in
    let digits = (nb + 3) / 4 in
    let buf = Buffer.create digits in
    for i = digits - 1 downto 0 do
      let v = ref 0 in
      for j = 3 downto 0 do
        v := (!v lsl 1) lor (if testbit n ((i * 4) + j) then 1 else 0)
      done;
      Buffer.add_char buf "0123456789abcdef".[!v]
    done;
    Buffer.contents buf
  end

let pp fmt n = Format.pp_print_string fmt (to_string n)

(* --- number theory ---------------------------------------------------- *)

let rec gcd a b =
  let a = abs a and b = abs b in
  if b.sign = 0 then a else gcd b (rem a b)

let egcd a b =
  (* Iterative extended Euclid on non-negative inputs. *)
  if a.sign < 0 || b.sign < 0 then invalid_arg "Bignum.egcd: negative input";
  let r0 = ref a and r1 = ref b in
  let x0 = ref one and x1 = ref zero in
  let y0 = ref zero and y1 = ref one in
  while !r1.sign <> 0 do
    let q, r = divmod !r0 !r1 in
    r0 := !r1;
    r1 := r;
    let nx = sub !x0 (mul q !x1) in
    x0 := !x1;
    x1 := nx;
    let ny = sub !y0 (mul q !y1) in
    y0 := !y1;
    y1 := ny
  done;
  (!r0, !x0, !y0)

let mod_inverse a m =
  if m.sign <= 0 then invalid_arg "Bignum.mod_inverse: modulus must be positive";
  let g, x, _ = egcd (mod_ a m) m in
  if equal g one then Some (mod_ x m) else None

let mod_pow_generic b e m =
  if equal m one then zero
  else begin
    let result = ref one in
    let acc = ref (mod_ b m) in
    let bits = numbits e in
    for i = 0 to bits - 1 do
      if testbit e i then result := mod_ (mul !result !acc) m;
      if i < bits - 1 then acc := mod_ (mul !acc !acc) m
    done;
    !result
  end

(* Montgomery exponentiation (CIOS), used for odd moduli — the RSA case.
   Operands live as little-endian limb arrays of the modulus's width; the
   accumulator never exceeds 2^52 + 2^27, well inside a 63-bit int. *)
module Mont = struct
  type ctx = {
    n_limbs : int array;
    k : int;
    n0' : int; (* -n[0]^-1 mod base *)
    r2 : int array; (* R^2 mod n, R = base^k *)
    modulus : t;
  }

  let limbs_of k v =
    let a = Array.make k 0 in
    Array.blit v.mag 0 a 0 (Array.length v.mag);
    a

  let inv_limb n0 =
    (* Hensel lifting: x <- x * (2 - n0 * x) doubles correct low bits. *)
    let x = ref 1 in
    for _ = 1 to 5 do
      x := !x * (2 - (n0 * !x)) land limb_mask
    done;
    !x land limb_mask

  let create m =
    if m.sign <= 0 || not (testbit m 0) then None
    else begin
      let k = Array.length m.mag in
      let n_limbs = limbs_of k m in
      let n0' = base - inv_limb n_limbs.(0) in
      let r2 = mod_ (shift_left one (2 * k * base_bits)) m in
      Some { n_limbs; k; n0'; r2 = limbs_of k r2; modulus = m }
    end

  (* acc := MontMul(a, b) — both k-limb arrays; result k limbs. *)
  let mont_mul ctx a b =
    let k = ctx.k in
    let n = ctx.n_limbs in
    let acc = Array.make (k + 2) 0 in
    for i = 0 to k - 1 do
      let ai = a.(i) in
      let c = ref 0 in
      for j = 0 to k - 1 do
        let t = acc.(j) + (ai * b.(j)) + !c in
        acc.(j) <- t land limb_mask;
        c := t lsr base_bits
      done;
      let t = acc.(k) + !c in
      acc.(k) <- t land limb_mask;
      acc.(k + 1) <- acc.(k + 1) + (t lsr base_bits);
      let m0 = acc.(0) * ctx.n0' land limb_mask in
      let c = ref ((acc.(0) + (m0 * n.(0))) lsr base_bits) in
      for j = 1 to k - 1 do
        let t = acc.(j) + (m0 * n.(j)) + !c in
        acc.(j - 1) <- t land limb_mask;
        c := t lsr base_bits
      done;
      let t = acc.(k) + !c in
      acc.(k - 1) <- t land limb_mask;
      acc.(k) <- acc.(k + 1) + (t lsr base_bits);
      acc.(k + 1) <- 0
    done;
    let out = Array.sub acc 0 k in
    (* Conditional subtraction: the result is < 2n. *)
    let ge =
      acc.(k) > 0
      ||
      let rec cmp i =
        if i < 0 then true
        else if out.(i) <> n.(i) then out.(i) > n.(i)
        else cmp (i - 1)
      in
      cmp (k - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let d = out.(i) - n.(i) - !borrow in
        if d < 0 then begin
          out.(i) <- d + base;
          borrow := 1
        end
        else begin
          out.(i) <- d;
          borrow := 0
        end
      done
    end;
    out

  let mod_pow ctx b e =
    let k = ctx.k in
    let b = mod_ b ctx.modulus in
    let b_mont = mont_mul ctx (limbs_of k b) ctx.r2 in
    (* 1 in Montgomery form: R mod n = MontMul(1, R^2). *)
    let one_limbs = Array.make k 0 in
    one_limbs.(0) <- 1;
    let result = ref (mont_mul ctx one_limbs ctx.r2) in
    let acc = ref b_mont in
    let bits = numbits e in
    for i = 0 to bits - 1 do
      if testbit e i then result := mont_mul ctx !result !acc;
      if i < bits - 1 then acc := mont_mul ctx !acc !acc
    done;
    let plain = mont_mul ctx !result one_limbs in
    normalize 1 plain
end

let mod_pow b e m =
  if m.sign <= 0 then invalid_arg "Bignum.mod_pow: modulus must be positive";
  if e.sign < 0 then invalid_arg "Bignum.mod_pow: negative exponent";
  if equal m one then zero
  else if testbit m 0 && Array.length m.mag >= 2 then begin
    match Mont.create m with
    | Some ctx -> Mont.mod_pow ctx b e
    | None -> mod_pow_generic b e m
  end
  else mod_pow_generic b e m

let random g ~bits =
  if bits <= 0 then invalid_arg "Bignum.random: bits <= 0";
  let nbytes = (bits + 7) / 8 in
  let s = Prng.bytes g nbytes in
  let excess = (nbytes * 8) - bits in
  let b = Bytes.of_string s in
  if excess > 0 then
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xFF lsr excess)));
  of_bytes_be (Bytes.unsafe_to_string b)

let random_below g n =
  if n.sign <= 0 then invalid_arg "Bignum.random_below: bound <= 0";
  let bits = numbits n in
  let rec loop () =
    let candidate = random g ~bits in
    if compare candidate n < 0 then candidate else loop ()
  in
  loop ()

(* manetdom: allow toplevel-state escaping-memo — the sieve array is
   local to this initialiser and the resulting prime table is only ever
   indexed, never written, after module init: read-only across
   domains. *)
let small_primes =
  (* Primes below 1000, enough trial division to reject most candidates
     before a Miller-Rabin round. *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let out = ref [] in
  for i = limit downto 2 do
    if sieve.(i) then out := i :: !out
  done;
  Array.of_list !out

let is_probable_prime ?(rounds = 24) g n =
  let n = abs n in
  match to_int_opt n with
  | Some v when v < 2 -> false
  | Some v when v <= small_primes.(Array.length small_primes - 1) ->
      Array.exists (fun p -> p = v) small_primes
  | _ ->
      let divisible_by_small =
        Array.exists
          (fun p ->
            let r = rem n (of_int p) in
            r.sign = 0)
          small_primes
      in
      if divisible_by_small then false
      else begin
        (* n - 1 = d * 2^s with d odd *)
        let n1 = sub n one in
        let s = ref 0 in
        let d = ref n1 in
        while not (testbit !d 0) do
          d := shift_right !d 1;
          incr s
        done;
        let witness a =
          let x = ref (mod_pow a !d n) in
          if equal !x one || equal !x n1 then false
          else begin
            let composite = ref true in
            (try
               for _ = 1 to !s - 1 do
                 x := mod_ (mul !x !x) n;
                 if equal !x n1 then begin
                   composite := false;
                   raise Exit
                 end
               done
             with Exit -> ());
            !composite
          end
        in
        let rec rounds_loop k =
          if k = 0 then true
          else begin
            let a = add two (random_below g (sub n (of_int 4))) in
            if witness a then false else rounds_loop (k - 1)
          end
        in
        rounds_loop rounds
      end

let generate_prime g ~bits =
  if bits < 2 then invalid_arg "Bignum.generate_prime: bits < 2";
  let rec attempt () =
    let candidate = random g ~bits in
    (* Force the top bit (exact width) and the low bit (odd). *)
    let candidate = add candidate (shift_left one (bits - 1)) in
    let candidate =
      if testbit candidate bits then
        (* Carry overflowed the width: retry. *)
        zero
      else if testbit candidate 0 then candidate
      else add candidate one
    in
    if candidate.sign = 0 || numbits candidate <> bits then attempt ()
    else begin
      (* March odd numbers forward until prime, staying within the width. *)
      let rec march c tries =
        if tries > 4096 || numbits c <> bits then attempt ()
        else if is_probable_prime g c then c
        else march (add c two) (tries + 1)
      in
      march candidate 0
    end
  in
  attempt ()
