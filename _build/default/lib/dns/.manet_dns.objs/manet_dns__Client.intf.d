lib/dns/client.mli: Manet_ipv6 Manet_proto
