(** An SRP-style comparison protocol (Papadimitratos-Haas, reviewed in
    the paper's §2.1).

    SRP assumes a pre-established {e security association} — a shared key
    — between every communicating source/destination pair, and protects
    route discovery end to end: the source MACs its request under the
    pair key, the destination verifies it and MACs the collected route in
    its reply, and intermediate nodes do nothing cryptographic at all.
    Fabricated or replayed route replies are rejected, with none of
    secure-DSR's per-hop cost.

    What it inherits from that design (and what the paper's protocol
    fixes) is exercised by the tests and the E4 matrix:
    - intermediate nodes are unverified, so impersonating a relay in the
      route record goes unnoticed;
    - route errors cannot be authenticated (no association with
      intermediates), so RERR forgery works as well as against plain DSR;
    - the pairwise key setup is exactly the pre-configuration burden the
      paper's DNS-only bootstrap avoids.

    The pairwise associations are modelled by key derivation from a
    network-wide master secret ([k_sd = HMAC(master, a || b)] with the
    address pair sorted), standing in for the out-of-band establishment
    SRP presupposes. *)

module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages

type config = {
  discovery_timeout : float;
  max_discovery_attempts : int;
  ack_timeout : float;
  max_send_retries : int;
  cache_capacity_per_dst : int;
  flood_jitter : float;
}

(* manetsem: allow dead-export — public API: the documented starting
   point for customised configs, symmetric with Dns.default_config. *)
val default_config : config

type t

val create :
  ?config:config -> master:string -> Manet_proto.Node_ctx.t -> t

val handle : t -> src:int -> Messages.t -> unit
val send : t -> dst:Address.t -> ?size:int -> unit -> unit

val discover :
  t -> dst:Address.t -> on_route:(Address.t list option -> unit) -> unit

(* manetsem: allow dead-export — inspection accessor kept for parity
   with Dsr.cached_route, so experiments can compare like for like. *)
val cached_route : t -> dst:Address.t -> Address.t list option
val cached_routes : t -> dst:Address.t -> Address.t list list
(* manetsem: allow dead-export — uniform agent accessor; every protocol
   agent (Dad, Dsr, Srp, Secure_routing) exposes [address]. *)
val address : t -> Address.t

(** Stats: the shared [data.*]/[route.*]/[rerr.*] keys plus
    [srp.rreq_rejected] and [srp.rrep_rejected]. *)
