test/test_manetsec.mli:
