module Prng = Manet_crypto.Prng

type model =
  | Static
  | Random_waypoint of { min_speed : float; max_speed : float; pause : float }
  | Random_walk of { speed : float; turn_interval : float }

type waypoint_state = {
  mutable tx : float; (* target *)
  mutable ty : float;
  mutable speed : float;
  mutable pause_until : float;
}

type walk_state = { mutable heading : float; mutable next_turn : float }

type node_state = Wp of waypoint_state | Walk of walk_state | Still

type t = {
  engine : Engine.t;
  topo : Topology.t;
  rng : Prng.t;
  model : model;
  tick : float;
  nodes : node_state array;
  mutable running : bool;
}

let create ?(tick = 0.5) engine topo rng model =
  let n = Topology.size topo in
  let init _ =
    match model with
    | Static -> Still
    | Random_waypoint _ ->
        Wp { tx = 0.0; ty = 0.0; speed = 0.0; pause_until = -1.0 }
    | Random_walk _ -> Walk { heading = 0.0; next_turn = 0.0 }
  in
  { engine; topo; rng; model; tick; nodes = Array.init n init; running = false }

let pick_waypoint t st ~min_speed ~max_speed =
  st.tx <- Prng.float t.rng (Topology.width t.topo);
  st.ty <- Prng.float t.rng (Topology.height t.topo);
  st.speed <- min_speed +. Prng.float t.rng (max_speed -. min_speed)

let step_waypoint t i st ~min_speed ~max_speed ~pause =
  let now = Engine.now t.engine in
  if now < st.pause_until then ()
  else begin
    if st.pause_until < 0.0 then begin
      (* first tick: choose an initial destination *)
      pick_waypoint t st ~min_speed ~max_speed;
      st.pause_until <- 0.0
    end;
    let x, y = Topology.position t.topo i in
    let dx = st.tx -. x and dy = st.ty -. y in
    let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
    let step = st.speed *. t.tick in
    if dist <= step then begin
      Topology.set_position t.topo i (st.tx, st.ty);
      st.pause_until <- now +. pause;
      pick_waypoint t st ~min_speed ~max_speed
    end
    else
      Topology.set_position t.topo i
        (x +. (dx /. dist *. step), y +. (dy /. dist *. step))
  end

let step_walk t i st ~speed ~turn_interval =
  let now = Engine.now t.engine in
  if now >= st.next_turn then begin
    st.heading <- Prng.float t.rng (2.0 *. Float.pi);
    st.next_turn <- now +. turn_interval
  end;
  let x, y = Topology.position t.topo i in
  let step = speed *. t.tick in
  let nx = x +. (cos st.heading *. step) and ny = y +. (sin st.heading *. step) in
  (* Reflect off the field boundary. *)
  let w = Topology.width t.topo and h = Topology.height t.topo in
  let reflect v limit =
    if v < 0.0 then -.v else if v > limit then (2.0 *. limit) -. v else v
  in
  let rx = reflect nx w and ry = reflect ny h in
  if rx <> nx || ry <> ny then st.heading <- st.heading +. Float.pi;
  Topology.set_position t.topo i (rx, ry)

let rec tick t =
  if t.running then begin
    (match t.model with
    | Static -> ()
    | Random_waypoint { min_speed; max_speed; pause } ->
        Array.iteri
          (fun i st ->
            match st with
            | Wp wp -> step_waypoint t i wp ~min_speed ~max_speed ~pause
            | Walk _ | Still -> ())
          t.nodes
    | Random_walk { speed; turn_interval } ->
        Array.iteri
          (fun i st ->
            match st with
            | Walk w -> step_walk t i w ~speed ~turn_interval
            | Wp _ | Still -> ())
          t.nodes);
    Engine.schedule t.engine ~label:"mobility" ~delay:t.tick (fun () -> tick t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    match t.model with
    | Static -> ()
    | Random_waypoint _ | Random_walk _ ->
        Engine.schedule t.engine ~label:"mobility" ~delay:t.tick (fun () ->
            tick t)
  end

let stop t = t.running <- false
