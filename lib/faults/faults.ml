open Manet_sim
module Prng = Manet_crypto.Prng

type event =
  | Crash of int
  | Restart of int
  | Link_down of int * int
  | Link_up of int * int
  | Partition of int list
  | Heal
  | Channel of Net.channel

type step = { at : float; event : event }
type plan = step list

(* --- builders ----------------------------------------------------------- *)

let crash ~at node = [ { at; event = Crash node } ]
let restart ~at node = [ { at; event = Restart node } ]
let link_down ~at a b = [ { at; event = Link_down (a, b) } ]
let link_up ~at a b = [ { at; event = Link_up (a, b) } ]

let outage ~from ~until node =
  if until <= from then invalid_arg "Faults.outage: until <= from";
  [ { at = from; event = Crash node }; { at = until; event = Restart node } ]

let flap ~from ~until ~period a b =
  if period <= 0.0 then invalid_arg "Faults.flap: period <= 0";
  if until <= from then invalid_arg "Faults.flap: until <= from";
  let rec go t down acc =
    if t >= until then
      (* Always leave the link up at the end of the window. *)
      List.rev
        (if down then { at = until; event = Link_up (a, b) } :: acc else acc)
    else
      let event = if down then Link_up (a, b) else Link_down (a, b) in
      go (t +. period) (not down) ({ at = t; event } :: acc)
  in
  go from false []

let partition ~from ~until group =
  if until <= from then invalid_arg "Faults.partition: until <= from";
  [ { at = from; event = Partition group }; { at = until; event = Heal } ]

let gilbert_elliott ?(loss_good = 0.01) ?(loss_bad = 0.8) ~p_good_to_bad
    ~p_bad_to_good () =
  Net.Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad }

let degrade ~from ~until ~channel ~baseline =
  if until <= from then invalid_arg "Faults.degrade: until <= from";
  [ { at = from; event = Channel channel }; { at = until; event = Channel baseline } ]

(* Seeded churn: each node alternates exponentially-distributed up and
   down periods over [0, horizon).  Nodes are processed in index order
   and each gets its own split stream, so the plan depends only on
   (seed, arguments) — not on evaluation order. *)
let churn ~seed ~nodes ~horizon ~mean_up ~mean_down =
  if horizon <= 0.0 then invalid_arg "Faults.churn: horizon <= 0";
  if mean_up <= 0.0 || mean_down <= 0.0 then
    invalid_arg "Faults.churn: means must be positive";
  let root = Prng.create ~seed in
  let steps = ref [] in
  List.iter
    (fun node ->
      let rng = Prng.split root in
      let rec go t =
        let up = Prng.exponential rng ~mean:mean_up in
        let down_at = t +. up in
        if down_at < horizon then begin
          steps := { at = down_at; event = Crash node } :: !steps;
          let down = Prng.exponential rng ~mean:mean_down in
          let up_at = down_at +. down in
          if up_at < horizon then begin
            steps := { at = up_at; event = Restart node } :: !steps;
            go up_at
          end
          else
            (* Bring the node back at the horizon so churn plans leave
               the network whole for post-fault measurement. *)
            steps := { at = horizon; event = Restart node } :: !steps
        end
      in
      go 0.0)
    (List.sort_uniq Int.compare nodes);
  List.rev !steps

let seq plans = List.concat plans

(* --- validation --------------------------------------------------------- *)

let check_node ~n i what =
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Faults.validate: %s node %d outside [0,%d)" what i n)

let validate ~n plan =
  List.iter
    (fun { at; event } ->
      if at < 0.0 then invalid_arg "Faults.validate: negative time";
      match event with
      | Crash i -> check_node ~n i "crash"
      | Restart i -> check_node ~n i "restart"
      | Link_down (a, b) | Link_up (a, b) ->
          check_node ~n a "link";
          check_node ~n b "link";
          if a = b then invalid_arg "Faults.validate: self-link"
      | Partition group ->
          List.iter (fun i -> check_node ~n i "partition") group
      | Heal | Channel _ -> ())
    plan

(* --- rendering ---------------------------------------------------------- *)

let event_name = function
  | Crash _ -> "fault.crash"
  | Restart _ -> "fault.restart"
  | Link_down _ -> "fault.link_down"
  | Link_up _ -> "fault.link_up"
  | Partition _ -> "fault.partition"
  | Heal -> "fault.heal"
  | Channel _ -> "fault.channel"

let event_node = function
  | Crash i | Restart i -> i
  | Link_down _ | Link_up _ | Partition _ | Heal | Channel _ -> -1

let channel_detail = function
  | Net.Uniform { loss } -> Printf.sprintf "uniform loss=%.3f" loss
  | Net.Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad }
    ->
      Printf.sprintf "gilbert-elliott g2b=%.3f b2g=%.3f lg=%.3f lb=%.3f"
        p_good_to_bad p_bad_to_good loss_good loss_bad

let event_detail = function
  | Crash i -> Printf.sprintf "node %d down" i
  | Restart i -> Printf.sprintf "node %d up" i
  | Link_down (a, b) -> Printf.sprintf "link %d-%d severed" a b
  | Link_up (a, b) -> Printf.sprintf "link %d-%d restored" a b
  | Partition group ->
      Printf.sprintf "cut {%s}"
        (String.concat "," (List.map string_of_int group))
  | Heal -> "partition healed"
  | Channel c -> channel_detail c

(* --- scheduling --------------------------------------------------------- *)

type hooks = {
  crash : int -> unit;
  restart : int -> unit;
  set_link : int -> int -> up:bool -> unit;
  partition : int list -> unit;
  heal : unit -> unit;
  set_channel : Net.channel -> unit;
}

let net_hooks net =
  {
    crash = (fun i -> Net.set_down net i true);
    restart = (fun i -> Net.set_down net i false);
    set_link = (fun a b ~up -> Net.set_link net a b ~up);
    partition = (fun group -> Net.set_partition net group);
    heal = (fun () -> Net.clear_partition net);
    set_channel = (fun c -> Net.set_channel net c);
  }

let apply hooks = function
  | Crash i -> hooks.crash i
  | Restart i -> hooks.restart i
  | Link_down (a, b) -> hooks.set_link a b ~up:false
  | Link_up (a, b) -> hooks.set_link a b ~up:true
  | Partition group -> hooks.partition group
  | Heal -> hooks.heal ()
  | Channel c -> hooks.set_channel c

module Obs = Manet_obs.Obs
module Audit = Manet_obs.Audit

let outage_key i = "outage:" ^ string_of_int i
let partition_key = "partition"

(* Span bookkeeping for the fault domain: a Crash..Restart pair becomes
   one [fault.outage] span (correlated under [outage_key], so a restart
   hook can parent the node's re-DAD to it) and a Partition..Heal pair
   one [fault.partition] span. *)
let record_span o = function
  | Crash i ->
      let sid =
        Obs.start o ~kind:"fault.outage" ~node:i
          ~detail:(Printf.sprintf "node %d" i)
          ()
      in
      Obs.correlate o (outage_key i) sid
  | Restart i -> (
      match Obs.lookup o (outage_key i) with
      | Some sid -> Obs.finish o sid Obs.Ok
      | None -> ())
  | Partition group ->
      let sid =
        Obs.start o ~kind:"fault.partition" ~node:(-1)
          ~detail:
            (String.concat "," (List.map string_of_int group))
          ()
      in
      Obs.correlate o partition_key sid
  | Heal -> (
      match Obs.lookup o partition_key with
      | Some sid -> Obs.finish o sid Obs.Ok
      | None -> ())
  | Link_down _ | Link_up _ | Channel _ -> ()

let schedule ?obs engine hooks plan =
  let stats = Engine.stats engine in
  (* Stable sort: steps sharing a timestamp fire in plan order. *)
  let sorted = List.stable_sort (fun a b -> Float.compare a.at b.at) plan in
  List.iter
    (fun { at; event } ->
      Engine.schedule_at engine ~label:"fault" ~time:at (fun () ->
          Stats.incr stats (event_name event);
          Engine.log engine ~node:(event_node event) ~event:(event_name event)
            ~detail:(event_detail event);
          (match obs with Some o -> record_span o event | None -> ());
          (* Injected outages land in the audit stream too: the detector
             must not mistake a crashed relay's silence for hostility,
             and the ground truth for that distinction lives here. *)
          (match (obs, event) with
          | Some o, Crash i ->
              Audit.emit (Obs.audit o) ~kind:Audit.Fault_crash ~node:i
                ~cause:"injected crash" ()
          | Some o, Restart i ->
              Audit.emit (Obs.audit o) ~kind:Audit.Fault_restart ~node:i
                ~cause:"injected restart" ()
          | _ -> ());
          apply hooks event))
    sorted
