module M = Messages

let ipv6_header = 40
let addr_size = 16
let seq_size = 4
let challenge_size = 8
let rn_size = 8

let srr_entry_size ~sig_size ~pk_size =
  (* address + two u16 length prefixes + signature + key + modifier *)
  addr_size + 2 + sig_size + 2 + pk_size + rn_size

(* Simulation-only metadata carried inside the encoding but not charged
   on the wire: the [sent_at] float of Data and Ack. *)
let sim_metadata_bytes = function
  | M.Data _ | M.Ack _ -> 8
  | _ -> 0

let size_of msg =
  (* The modelled wire size is exactly what the binary codec emits (so
     the overhead experiments charge precisely the bytes a deployment
     would send), plus a 40-byte IPv6 header, minus simulation-only
     metadata. *)
  ipv6_header + String.length (Binary.encode msg) - sim_metadata_bytes msg
