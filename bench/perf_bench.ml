(* The perf trajectory snapshot: one JSON document per PR recording the
   numbers ROADMAP tracks — engine throughput, hot-path ns/op, peak
   heap, and the multicore sweep wall-clock that PR 6's domain-safety
   certificate unlocked.  CI regenerates and archives the file; the
   committed copy records the reference machine.

     dune exec bench/main.exe -- perf        # writes BENCH_<pr>.json

   tools/benchgate compares the fresh snapshot against the previous
   PR's committed one and fails CI on a >20% throughput or hot-path
   regression. *)

module Scenario = Manetsec.Scenario
module Engine = Manetsec.Sim.Engine
module Mono_clock = Manetsec.Sim.Mono_clock
module Parallel = Manetsec.Sim.Parallel
module Heap = Manetsec.Sim.Heap
module Net = Manetsec.Sim.Net
module Hist = Manetsec.Sim.Hist
module Stats = Manetsec.Sim.Stats
module Sweep = Manetsec.Sweep
module Prng = Manetsec.Crypto.Prng
module Sha256 = Manetsec.Crypto.Sha256
module Rsa = Manetsec.Crypto.Rsa
module Suite = Manetsec.Crypto.Suite
module Json = Manetsec.Obs_json
module Obs = Manetsec.Obs
module Timeline = Manetsec.Timeline
module Flood = Manetsec.Flood

let pr = 10
let out_file = Printf.sprintf "BENCH_%d.json" pr

(* Mean ns per call, timed over enough batches to fill [target_s] of
   wall clock (after one warmup batch). *)
let ns_per_op ?(batch = 100) ?(target_s = 0.2) f =
  for _ = 1 to batch do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t0 = Mono_clock.now_s () in
  let calls = ref 0 in
  while Mono_clock.now_s () -. t0 < target_s do
    for _ = 1 to batch do
      ignore (Sys.opaque_identity (f ()))
    done;
    calls := !calls + batch
  done;
  (Mono_clock.now_s () -. t0) *. 1e9 /. float_of_int (max 1 !calls)

let hot_paths () =
  let g = Prng.create ~seed:4242 in
  let data_1k = Prng.bytes g 1024 in
  let rsa_pub, rsa_priv = Rsa.generate g ~bits:512 in
  let signature = Rsa.sign rsa_priv data_1k in
  let sha = ns_per_op (fun () -> Sha256.digest data_1k) in
  let verify =
    ns_per_op ~batch:10
      (fun () -> Rsa.verify rsa_pub ~msg:data_1k ~signature)
  in
  (* The PR-8 metric heap_push_pop_ns timed the old allocating API
     (pop returning Some (prio, v)); the SoA heap has no such
     operation, so the metric is renamed rather than compared across
     incompatible shapes: heap_cycle_ns is one allocation-free
     push / min_snd / drop_min cycle. *)
  let heap =
    let h = Heap.create () in
    let i = ref 0 in
    ns_per_op (fun () ->
        incr i;
        Heap.push h (float_of_int (!i land 1023)) () !i;
        let v = Heap.min_snd h in
        Heap.drop_min h;
        v)
  in
  [
    ("sha256_1k_ns", Json.Float sha);
    ("rsa512_verify_ns", Json.Float verify);
    ("heap_cycle_ns", Json.Float heap);
  ]

(* A representative secure run (30 nodes, traffic, 2 black holes) for
   engine throughput and peak heap.  [timeline] toggles the bucket
   recorder: the bench runs the same workload off and on and checks the
   deterministic perf export is byte-identical (recording observes, it
   never perturbs) and the throughput cost stays small. *)
let engine_run ~timeline () =
  let params =
    {
      Scenario.default_params with
      n = 30;
      seed = 11;
      topology = Scenario.Random { width = 1200.0; height = 1200.0 };
      adversaries =
        [ (5, Manetsec.Adversary.blackhole); (9, Manetsec.Adversary.blackhole) ];
    }
  in
  let s = Scenario.create params in
  if not timeline then Timeline.set_enabled (Obs.timeline (Scenario.obs s)) false;
  Engine.set_profiling (Scenario.engine s) true;
  let g0 = Gc.quick_stat () in
  Scenario.bootstrap s;
  Scenario.start_cbr s
    ~flows:[ (1, 17); (3, 21); (8, 28); (14, 2) ]
    ~interval:0.25 ~duration:60.0 ();
  Scenario.run s ~until:120.0;
  let g1 = Gc.quick_stat () in
  let events = max 1 (Engine.events_processed (Scenario.engine s)) in
  let minor_per_event =
    (g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int events
  in
  let scan_hist = Net.scan_hist (Scenario.net s) in
  let scan_mean = match Hist.mean scan_hist with Some m -> m | None -> 0.0 in
  let scan_p99 =
    match Hist.percentile scan_hist 0.99 with
    | Some v -> float_of_int v
    | None -> 0.0
  in
  ( Engine.events_per_sec (Scenario.engine s),
    (Gc.stat ()).Gc.top_heap_words,
    scan_mean,
    scan_p99,
    minor_per_event,
    Scenario.perf_det_jsonl s )

(* A small real-RSA run for the paper's E2-style cost metrics:
   signature verifications per delivered data message, plus the two
   flood-provenance aggregates (redundant verifications per flood — the
   work ROADMAP item 3's verification cache targets — and the broadcast
   redundancy ratio). *)
let rsa_cost_run () =
  let params =
    {
      Scenario.default_params with
      n = 12;
      seed = 5;
      suite = Scenario.Rsa_suite 512;
    }
  in
  let s = Scenario.create params in
  Scenario.bootstrap s;
  Scenario.start_cbr s
    ~flows:[ (1, 7); (3, 10) ]
    ~interval:1.0 ~duration:20.0 ();
  Scenario.run s ~until:60.0;
  let delivered = Stats.get (Scenario.stats s) "data.delivered" in
  let verifies = (Scenario.suite s).Suite.verify_count in
  let fl = Obs.flood (Scenario.obs s) in
  ( float_of_int verifies /. float_of_int (max 1 delivered),
    Flood.duplicate_verifies_per_flood fl,
    Flood.flood_redundancy_ratio fl )

(* The sweep grid used for wall-clock scaling; small enough for CI,
   large enough that fan-out dominates scheduling overhead. *)
let sweep_spec =
  {
    Sweep.e1_fractions = [ 0.0; 0.2 ];
    e1_nodes = 30;
    e1_duration = 120.0;
    e6_sizes = [ 24 ];
    seeds = [ 1; 2; 3 ];
  }

let sweep_wall ~domains =
  let t0 = Mono_clock.now_s () in
  ignore (Sys.opaque_identity (Sweep.run ~domains sweep_spec));
  Mono_clock.now_s () -. t0

let run () =
  Util.heading (Printf.sprintf "perf -- BENCH_%d.json" pr);
  let cores = Parallel.default_domains () in
  let off_events_per_sec, _, _, _, _, off_det = engine_run ~timeline:false () in
  let events_per_sec, peak_heap, scan_mean, scan_p99, minor_per_event, on_det =
    engine_run ~timeline:true ()
  in
  let timeline_clean = String.equal off_det on_det in
  let timeline_overhead = 1.0 -. (events_per_sec /. off_events_per_sec) in
  Printf.printf "engine              %.0f events/s, peak heap %d words\n%!"
    events_per_sec peak_heap;
  Printf.printf "timeline            %s, %.1f%% events/s overhead\n%!"
    (if timeline_clean then "non-perturbing (det export byte-identical)"
     else "PERTURBS THE RUN")
    (timeline_overhead *. 100.0);
  Printf.printf "neighbour scan      %.1f nodes/broadcast mean, p99 %.0f\n%!"
    scan_mean scan_p99;
  Printf.printf "alloc               %.1f minor words/event\n%!" minor_per_event;
  let rsa_per_msg, dup_verifies, redundancy = rsa_cost_run () in
  Printf.printf "rsa cost            %.2f verifies/delivered msg\n%!" rsa_per_msg;
  Printf.printf "floods              %.3f duplicate verifies/flood, %.3f \
                 redundancy ratio\n%!"
    dup_verifies redundancy;
  let hot = hot_paths () in
  List.iter
    (fun (name, j) ->
      Printf.printf "%-19s %s\n%!" name (Json.to_string j))
    hot;
  let walls =
    List.map
      (fun d ->
        let w = sweep_wall ~domains:d in
        Printf.printf "sweep @%d domain(s)  %.2f s wall\n%!" d w;
        (Printf.sprintf "d%d" d, Json.Float w))
      [ 1; 2; 4 ]
  in
  let wall d = match List.assoc (Printf.sprintf "d%d" d) walls with
    | Json.Float w -> w
    | _ -> nan
  in
  let speedup_4 = wall 1 /. wall 4 in
  Printf.printf "4-domain speedup    %.2fx (host has %d core(s))\n%!" speedup_4
    cores;
  let doc =
    Json.Obj
      [
        ("schema", Json.String "manetsim-bench");
        ("version", Json.Int 1);
        ("pr", Json.Int pr);
        ("host_cores", Json.Int cores);
        ("events_per_sec", Json.Float events_per_sec);
        ("peak_heap_words", Json.Int peak_heap);
        ("neighbour_scan_mean", Json.Float scan_mean);
        ("neighbour_scan_p99", Json.Float scan_p99);
        ("gc_minor_words_per_event", Json.Float minor_per_event);
        ("rsa_verifies_per_delivered_msg", Json.Float rsa_per_msg);
        ("duplicate_verifies_per_flood", Json.Float dup_verifies);
        ("flood_redundancy_ratio", Json.Float redundancy);
        ( "timeline",
          Json.Obj
            [
              ("non_perturbing", Json.Bool timeline_clean);
              ("overhead_frac", Json.Float timeline_overhead);
              ("events_per_sec_off", Json.Float off_events_per_sec);
            ] );
        ("hot_paths", Json.Obj hot);
        ( "sweep",
          Json.Obj
            [
              ("points", Json.Int (List.length (Sweep.points sweep_spec)));
              ("wall_s", Json.Obj walls);
              ("speedup_4", Json.Float speedup_4);
            ] );
      ]
  in
  let oc = open_out_bin out_file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out_file
