(** manetlint — project-specific static analysis for the manetsec tree.

    A dependency-free lexical analyser plus structural cross-checks
    enforcing the protocol, security, and determinism invariants the
    paper's argument relies on (see README.md "Static analysis").

    Rules can be suppressed with in-source annotations:
    [(* manetlint: allow <rule> ... *)] covers the comment's own lines
    plus the line directly below the comment's {e last} line — a
    multi-line rationale still anchors to the construct beneath it;
    [(* manetlint: allow-file <rule> ... *)] covers the whole file. *)

type finding = { file : string; line : int; rule : string; msg : string }

val rules : string list
(** All rule identifiers, as accepted by the allow annotations. *)

val to_string : finding -> string
(** [file:line: [rule] message] — one line per finding. *)

val lint_files : (string * string) list -> finding list
(** [lint_files [(path, contents); ...]] runs every rule over the given
    sources and returns the unsuppressed findings sorted by file, line,
    and rule.  Cross-file rules (proto-schema, mli-coverage) see the
    whole input set at once; path prefixes ([lib/], [lib/secure/], ...)
    decide which per-file rules apply. *)
