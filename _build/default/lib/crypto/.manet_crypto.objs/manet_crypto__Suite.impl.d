lib/crypto/suite.ml: Mock_sig Printf Rsa
