(** Textbook RSA, built on {!Bignum}.

    The paper writes [\[msg\]_XSK] for "the ciphertext of message [msg]
    encrypted by host X's private key" and verifies by decrypting with the
    public key and comparing.  That is exactly RSA signing with message
    recovery; we implement it as [sign msg = H(msg)^d mod n] and
    [verify] recomputes [H(msg)] and compares against [sig^e mod n].

    Keys are deliberately small by real-world standards (the default used
    by simulations is 512 bits): the protocol logic being reproduced
    depends only on the algebra, not on 2048-bit security margins, and
    small keys keep thousand-node simulations tractable. *)

type public_key = { n : Bignum.t; e : Bignum.t }
type private_key

val generate : Prng.t -> bits:int -> public_key * private_key
(** [generate g ~bits] creates a key pair with a [bits]-bit modulus.
    [bits] must be at least 32. *)

val public_key_to_bytes : public_key -> string
(** Length-prefixed big-endian encoding of [(n, e)]; this is the [PK]
    attached to protocol messages and hashed into CGA addresses. *)

val public_key_of_bytes : string -> public_key option
(** Inverse of {!public_key_to_bytes}; [None] on malformed input. *)

val sign : private_key -> string -> string
(** [sign sk msg] is [H(msg)^d mod n], padded to the modulus size.
    Computed with the Chinese Remainder Theorem (mod p and mod q
    separately, recombined with Garner's formula). *)

val sign_no_crt : private_key -> string -> string
(** The direct [m^d mod n] path, kept for testing and benchmarking the
    CRT speedup; produces identical signatures. *)

val verify : public_key -> msg:string -> signature:string -> bool

val modulus_bytes : public_key -> int
(** Size of the modulus (and thus of signatures) in bytes. *)
