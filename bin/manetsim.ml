(* manetsim: command-line front end for the simulator.

     manetsim run --nodes 30 --blackholes 3 --duration 60
     manetsim run --protocol dsr --mobility waypoint --trace
     manetsim run --seed 1 --jsonl-trace run.jsonl --json-report run.json
     manetsim dad --nodes 12 --collide
     manetsim attacks --nodes 16
     manetsim report run.jsonl

   Prints scenario metrics; --trace additionally dumps the protocol
   event trace; --jsonl-trace / --json-report export the telemetry
   spans and the run report; the report subcommand queries an exported
   trace offline. *)

module Scenario = Manetsec.Scenario
module Engine = Manetsec.Sim.Engine
module Stats = Manetsec.Sim.Stats
module Trace = Manetsec.Sim.Trace
module Mobility = Manetsec.Sim.Mobility
module Address = Manetsec.Ipv6.Address
module Adversary = Manetsec.Adversary
module Prng = Manetsec.Crypto.Prng
module Obs = Manetsec.Obs
module Json = Manetsec.Obs_json
module Obs_report = Manetsec.Obs_report
module Perf = Manetsec.Perf
module Timeline = Manetsec.Timeline
module Audit = Manetsec.Audit
module Metrics = Manetsec.Metrics
module Detector = Manetsec.Detector
module Scn = Manet_scenario.Scn
module Sexp = Manet_scenario.Sexp

open Cmdliner

(* --- shared flags ------------------------------------------------------- *)

let nodes_t =
  Arg.(value & opt int 20 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let protocol_t =
  let chosen_conv =
    Arg.enum [ ("secure", Scenario.Secure); ("dsr", Scenario.Plain_dsr) ]
  in
  Arg.(
    value & opt chosen_conv Scenario.Secure
    & info [ "protocol" ] ~docv:"PROTO" ~doc:"Routing protocol: secure or dsr.")

let suite_t =
  let parse s =
    match String.lowercase_ascii s with
    | "mock" -> Ok Scenario.Mock_suite
    | s -> (
        match String.split_on_char '-' s with
        | [ "rsa"; bits ] -> (
            match int_of_string_opt bits with
            | Some b when b >= 64 -> Ok (Scenario.Rsa_suite b)
            | _ -> Error (`Msg "rsa-<bits> with bits >= 64"))
        | _ -> Error (`Msg "expected mock or rsa-<bits>"))
  in
  let print fmt = function
    | Scenario.Mock_suite -> Format.pp_print_string fmt "mock"
    | Scenario.Rsa_suite b -> Format.fprintf fmt "rsa-%d" b
  in
  Arg.(
    value
    & opt (conv (parse, print)) Scenario.Mock_suite
    & info [ "suite" ] ~docv:"SUITE" ~doc:"Signature suite: mock or rsa-<bits>.")

let mobility_t =
  let chosen_conv =
    Arg.enum
      [
        ("static", Mobility.Static);
        ( "waypoint",
          Mobility.Random_waypoint { min_speed = 1.0; max_speed = 10.0; pause = 2.0 } );
        ("walk", Mobility.Random_walk { speed = 5.0; turn_interval = 4.0 });
      ]
  in
  Arg.(
    value & opt chosen_conv Mobility.Static
    & info [ "mobility" ] ~docv:"MODEL" ~doc:"Mobility: static, waypoint or walk.")

let blackholes_t =
  Arg.(
    value & opt int 0
    & info [ "blackholes" ] ~docv:"K" ~doc:"Number of black-hole adversaries.")

let spammers_t =
  Arg.(
    value & opt int 0
    & info [ "rerr-spammers" ] ~docv:"K" ~doc:"Number of RERR-fabricating adversaries.")

let duration_t =
  Arg.(
    value & opt float 60.0
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Traffic duration (simulated).")

let flows_t =
  Arg.(
    value & opt int 6 & info [ "flows" ] ~docv:"K" ~doc:"Number of CBR flows.")

let trace_t =
  Arg.(value & flag & info [ "trace" ] ~doc:"Dump the protocol event trace.")

let jsonl_trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl-trace" ] ~docv:"FILE"
        ~doc:
          "Write the telemetry spans and events as schema-versioned JSONL \
           (byte-identical across replays of the same seed).")

let json_report_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-report" ] ~docv:"FILE"
        ~doc:
          "Write a JSON run report: counters, latency summaries, per-kind \
           span aggregates, per-phase percentiles and the wall-clock \
           profile.")

let profile_t =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Measure host wall-clock time per event class (does not perturb \
           the simulation) and print the breakdown.")

let audit_jsonl_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "audit-jsonl" ] ~docv:"FILE"
        ~doc:
          "Write the security audit event stream as schema-versioned JSONL \
           (byte-identical across replays of the same seed).  Query it \
           offline with the audit subcommand.")

let metrics_csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-csv" ] ~docv:"FILE"
        ~doc:
          "Write windowed per-node and global metrics as CSV (enables the \
           metrics engine for the run).")

let metrics_prom_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-prom" ] ~docv:"FILE"
        ~doc:
          "Write windowed metrics in Prometheus exposition format (enables \
           the metrics engine for the run).")

let perf_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "perf-json" ] ~docv:"FILE"
        ~doc:
          "Write the performance telemetry export: a schema-versioned JSON \
           document with a deterministic section (event-label counts, \
           scheduler occupancy, neighbour-scan/fan-out histograms, crypto-op \
           accounting — byte-identical across replays of the same seed) and \
           a wall-clock section (timings, GC/alloc words; excluded from \
           determinism gates).  Query it with the perf subcommand.")

let timeline_jsonl_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline-jsonl" ] ~docv:"FILE"
        ~doc:
          "Write time-resolved run telemetry as schema-versioned JSONL: one \
           bucket line per active sim-second window (events, per-label \
           rates, queue depth, deliveries/drops, per-kind crypto ops, audit \
           rate) followed by per-flood propagation records — byte-identical \
           across replays of the same seed.  Query it with the timeline \
           subcommand.")

let progress_t =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Emit a wall-clock heartbeat to stderr every ~2 seconds while the \
           engine runs: events/sec, sim-time rate, queue depth and ETA, with \
           a stall warning when sim time stops advancing.  Does not perturb \
           the simulation or any deterministic export.")

(* --- telemetry plumbing -------------------------------------------------- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Must run before any engine events fire: capture is append-only, the
   profiler only samples the clock inside [Engine.run], and metric
   windows only fill while the engine is enabled. *)
let telemetry_begin ?(metrics = false) s ~profile ~jsonl_trace =
  if profile then Engine.set_profiling (Scenario.engine s) true;
  if metrics then Metrics.set_enabled (Obs.metrics (Scenario.obs s)) true;
  if jsonl_trace <> None then Obs.set_capture (Scenario.obs s) true

let print_profile s =
  let engine = Scenario.engine s in
  Printf.printf "\n-- profile (wall clock) -----------------------------\n";
  Printf.printf "%-12s %10s %12s\n" "class" "events" "wall ms";
  List.iter
    (fun (label, e) ->
      Printf.printf "%-12s %10d %12.3f\n" label e.Engine.p_count
        (e.Engine.p_wall_s *. 1000.0))
    (Engine.profile engine);
  Printf.printf "%-12s %10d %12.3f  (%.0f events/s)\n" "total"
    (Engine.events_processed engine)
    (Engine.wall_in_run engine *. 1000.0)
    (Engine.events_per_sec engine)

let telemetry_end ?audit_jsonl ?metrics_csv ?metrics_prom ?perf_json
    ?timeline_jsonl s ~seed ~profile ~jsonl_trace ~json_report =
  (match timeline_jsonl with
  | Some path ->
      write_file path
        (Scenario.timeline_jsonl ~meta:[ ("seed", Json.Int seed) ] s);
      Printf.printf "timeline jsonl      %s\n" path
  | None -> ());
  (match perf_json with
  | Some path ->
      write_file path
        (Json.to_string
           (Scenario.perf_json ~meta:[ ("seed", Json.Int seed) ] s)
        ^ "\n");
      Printf.printf "perf json           %s\n" path
  | None -> ());
  (match audit_jsonl with
  | Some path ->
      write_file path
        (Audit.to_jsonl
           ~meta:[ ("seed", Json.Int seed) ]
           (Obs.audit (Scenario.obs s)));
      Printf.printf "audit jsonl         %s\n" path
  | None -> ());
  (match metrics_csv with
  | Some path ->
      write_file path
        (Metrics.to_csv ~stats:(Scenario.stats s) (Obs.metrics (Scenario.obs s)));
      Printf.printf "metrics csv         %s\n" path
  | None -> ());
  (match metrics_prom with
  | Some path ->
      write_file path
        (Metrics.to_prom ~stats:(Scenario.stats s) (Obs.metrics (Scenario.obs s)));
      Printf.printf "metrics prom        %s\n" path
  | None -> ());
  (match jsonl_trace with
  | Some path ->
      write_file path
        (Obs.to_jsonl ~meta:[ ("seed", Json.Int seed) ] (Scenario.obs s));
      Printf.printf "jsonl trace         %s\n" path
  | None -> ());
  (match json_report with
  | Some path ->
      let j =
        Obs_report.run_report ~engine:(Scenario.engine s) ~obs:(Scenario.obs s)
          ~extra:[ ("seed", Json.Int seed) ]
          ()
      in
      write_file path (Json.to_string j ^ "\n");
      Printf.printf "json report         %s\n" path
  | None -> ());
  if profile then print_profile s

let make_params ~nodes ~seed ~protocol ~suite ~mobility ~blackholes ~spammers =
  let g = Prng.create ~seed:(seed + 7777) in
  let pool = Array.init (nodes - 1) (fun i -> i + 1) in
  Prng.shuffle g pool;
  let take k off = Array.to_list (Array.sub pool off (min k (nodes - 1 - off))) in
  let adversaries =
    List.map (fun i -> (i, Adversary.blackhole)) (take blackholes 0)
    @ List.map
        (fun i -> (i, Adversary.rerr_spammer ~every:1.0))
        (take spammers blackholes)
  in
  {
    Scenario.default_params with
    n = nodes;
    seed;
    protocol;
    suite;
    mobility;
    adversaries;
    topology =
      Scenario.Random
        {
          width = 220.0 *. sqrt (float_of_int nodes);
          height = 220.0 *. sqrt (float_of_int nodes);
        };
  }

let report s =
  let st = Scenario.stats s in
  Printf.printf "\n-- results ------------------------------------------\n";
  Printf.printf "delivery ratio      %.3f\n" (Scenario.delivery_ratio s);
  Printf.printf "ack ratio           %.3f\n" (Scenario.ack_ratio s);
  Printf.printf "offered/delivered   %d / %d\n"
    (Stats.get st "data.offered")
    (Stats.get st "data.delivered");
  (match Scenario.mean_latency s with
  | Some l -> Printf.printf "mean latency        %.1f ms\n" (l *. 1000.0)
  | None -> ());
  Printf.printf "control overhead    %d bytes, %d packets\n"
    (Scenario.control_bytes s) (Scenario.control_packets s);
  let signs, verifies = Scenario.crypto_ops s in
  Printf.printf "crypto operations   %d sign, %d verify\n" signs verifies;
  Printf.printf "route discoveries   %d (failed %d)\n"
    (Stats.get st "route.discoveries")
    (Stats.get st "route.discovery_failed");
  Printf.printf "route errors        %d received\n" (Stats.get st "rerr.received");
  List.iter
    (fun key ->
      let v = Stats.get st key in
      if v > 0 then Printf.printf "%-19s %d\n" key v)
    [
      "secure.rreq_rejected"; "secure.rrep_rejected"; "secure.rerr_rejected";
      "secure.hostile_suspected"; "probe.sent"; "attack.data_dropped";
      "attack.rrep_forged"; "attack.rerr_forged";
    ]

(* --- scenario files ------------------------------------------------------ *)

let load_scenario path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> (
      match Scn.parse contents with
      | scn -> Ok scn
      | exception Scn.Error { pos; msg } ->
          Error (Printf.sprintf "%s:%d:%d: %s" path pos.Sexp.line pos.Sexp.col msg)
      | exception Sexp.Parse_error { pos; msg } ->
          Error (Printf.sprintf "%s:%d:%d: %s" path pos.Sexp.line pos.Sexp.col msg))
  | exception Sys_error msg -> Error msg

let scenario_run file out_dir perf_json timeline_jsonl =
  match load_scenario file with
  | Error msg -> `Error (false, msg)
  | Ok scn ->
      Printf.printf "scenario %s  (%d nodes, seed %d)\n%!" scn.Scn.name
        scn.Scn.nodes scn.Scn.seed;
      let s = Scn.execute scn in
      report s;
      Printf.printf "audit events        %d\n"
        (Audit.count (Obs.audit (Scenario.obs s)));
      (match Detector.suspects (Scenario.detector s) with
      | [] -> ()
      | suspects ->
          Printf.printf "suspected nodes     %s\n"
            (String.concat ", " (List.map string_of_int suspects)));
      List.iter
        (fun (_, filename, contents) ->
          let path = Filename.concat out_dir filename in
          write_file path contents;
          Printf.printf "export              %s\n" path)
        (Scn.render_exports scn ~seed:scn.Scn.seed s);
      (match perf_json with
      | Some path ->
          write_file path
            (Json.to_string
               (Scenario.perf_json
                  ~meta:
                    [
                      ("scenario", Json.String scn.Scn.name);
                      ("seed", Json.Int scn.Scn.seed);
                    ]
                  s)
            ^ "\n");
          Printf.printf "perf json           %s\n" path
      | None -> ());
      (match timeline_jsonl with
      | Some path ->
          write_file path
            (Scenario.timeline_jsonl
               ~meta:
                 [
                   ("scenario", Json.String scn.Scn.name);
                   ("seed", Json.Int scn.Scn.seed);
                 ]
               s);
          Printf.printf "timeline jsonl      %s\n" path
      | None -> ());
      `Ok ()

let scenario_file_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "scenario" ] ~docv:"FILE"
        ~doc:
          "Run a declarative scenario file (see examples/scenarios/) instead \
           of a flag-built configuration; exports are the ones the file \
           requests and every other run flag except --perf-json and \
           --timeline-jsonl is ignored.")

let out_dir_t =
  Arg.(
    value & opt dir "."
    & info [ "out-dir" ] ~docv:"DIR"
        ~doc:"Directory that receives the exports a scenario file requests.")

(* --- run ----------------------------------------------------------------- *)

let run_flags_cmd ~nodes ~seed ~protocol ~suite ~mobility ~blackholes ~spammers
    ~duration ~flows ~trace ~jsonl_trace ~json_report ~profile ~audit_jsonl
    ~metrics_csv ~metrics_prom ~perf_json ~timeline_jsonl ~progress =
  let params =
    make_params ~nodes ~seed ~protocol ~suite ~mobility ~blackholes ~spammers
  in
  let s = Scenario.create params in
  if trace then Trace.enable (Engine.trace (Scenario.engine s));
  telemetry_begin s ~profile ~jsonl_trace
    ~metrics:(metrics_csv <> None || metrics_prom <> None);
  if progress then
    Timeline.enable_progress
      ~horizon:(duration +. 30.0)
      (Obs.timeline (Scenario.obs s))
      ~emit:(fun line -> Printf.eprintf "%s\n%!" line)
      ();
  Printf.printf "bootstrapping %d nodes...\n%!" nodes;
  Scenario.bootstrap s;
  let g = Prng.create ~seed:(seed + 99) in
  let flow_list =
    List.init flows (fun _ ->
        let a = 1 + Prng.int g (nodes - 1) in
        let rec other () =
          let b = 1 + Prng.int g (nodes - 1) in
          if b = a then other () else b
        in
        (a, other ()))
  in
  Printf.printf "flows: %s\n"
    (String.concat ", "
       (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) flow_list));
  Scenario.start_cbr s ~flows:flow_list ~interval:0.5 ~duration ();
  Scenario.run s ~until:(Engine.now (Scenario.engine s) +. duration +. 30.0);
  report s;
  Printf.printf "audit events        %d\n"
    (Audit.count (Obs.audit (Scenario.obs s)));
  (match Detector.suspects (Scenario.detector s) with
  | [] -> ()
  | suspects ->
      Printf.printf "suspected nodes     %s\n"
        (String.concat ", " (List.map string_of_int suspects)));
  telemetry_end s ~seed ~profile ~jsonl_trace ~json_report ?audit_jsonl
    ?metrics_csv ?metrics_prom ?perf_json ?timeline_jsonl;
  if trace then begin
    Printf.printf "\n-- trace --------------------------------------------\n";
    print_string (Trace.render (Engine.trace (Scenario.engine s)))
  end

let run_cmd scenario_file out_dir nodes seed protocol suite mobility blackholes
    spammers duration flows trace jsonl_trace json_report profile audit_jsonl
    metrics_csv metrics_prom perf_json timeline_jsonl progress =
  match scenario_file with
  | Some file -> scenario_run file out_dir perf_json timeline_jsonl
  | None ->
      run_flags_cmd ~nodes ~seed ~protocol ~suite ~mobility ~blackholes
        ~spammers ~duration ~flows ~trace ~jsonl_trace ~json_report ~profile
        ~audit_jsonl ~metrics_csv ~metrics_prom ~perf_json ~timeline_jsonl
        ~progress;
      `Ok ()

let run_term =
  Term.(
    ret
      (const run_cmd $ scenario_file_t $ out_dir_t $ nodes_t $ seed_t
     $ protocol_t $ suite_t $ mobility_t $ blackholes_t $ spammers_t
     $ duration_t $ flows_t $ trace_t $ jsonl_trace_t $ json_report_t
     $ profile_t $ audit_jsonl_t $ metrics_csv_t $ metrics_prom_t
     $ perf_json_t $ timeline_jsonl_t $ progress_t))

(* --- dad ------------------------------------------------------------------ *)

let dad_cmd nodes seed collide trace jsonl_trace json_report profile =
  let params =
    make_params ~nodes ~seed ~protocol:Scenario.Secure ~suite:Scenario.Mock_suite
      ~mobility:Mobility.Static ~blackholes:0 ~spammers:0
  in
  let s = Scenario.create params in
  telemetry_begin s ~profile ~jsonl_trace;
  if collide && nodes >= 3 then begin
    (* Give the last node the first host's address before it joins. *)
    let victim = Scenario.address_of s 1 in
    let joiner = Scenario.node s (nodes - 1) in
    let dir = joiner.Scenario.ctx.Manetsec.Proto.Node_ctx.directory in
    Manetsec.Proto.Directory.unregister dir (Scenario.address_of s (nodes - 1)) (nodes - 1);
    joiner.Scenario.identity.Manetsec.Proto.Identity.address <- victim;
    Manetsec.Proto.Directory.register dir victim (nodes - 1);
    Printf.printf "forced duplicate: node %d joins with node 1's address %s\n"
      (nodes - 1) (Address.to_string victim)
  end;
  if trace then Trace.enable (Engine.trace (Scenario.engine s));
  Scenario.bootstrap s;
  let st = Scenario.stats s in
  Printf.printf "configured %d, collisions detected %d, names registered %d\n"
    (Stats.get st "dad.configured")
    (Stats.get st "dad.collision")
    (Stats.get st "dns.registered");
  Array.iter
    (fun node ->
      Printf.printf "  node %-3d %s\n" node.Scenario.index
        (Address.to_string (Scenario.address_of s node.Scenario.index)))
    (Scenario.nodes s);
  telemetry_end s ~seed ~profile ~jsonl_trace ~json_report;
  if trace then print_string (Trace.render (Engine.trace (Scenario.engine s)))

let collide_t =
  Arg.(value & flag & info [ "collide" ] ~doc:"Force an address collision.")

let dad_term =
  Term.(
    const dad_cmd $ nodes_t $ seed_t $ collide_t $ trace_t $ jsonl_trace_t
    $ json_report_t $ profile_t)

(* --- attacks --------------------------------------------------------------- *)

let attacks_cmd nodes seed =
  (* Run each canned attack against both protocols and summarize. *)
  List.iter
    (fun (name, behavior) ->
      List.iter
        (fun (pname, protocol) ->
          let params =
            make_params ~nodes ~seed ~protocol ~suite:Scenario.Mock_suite
              ~mobility:Mobility.Static ~blackholes:0 ~spammers:0
          in
          let params = { params with Scenario.adversaries = [ (2, behavior) ] } in
          let s = Scenario.create params in
          Scenario.bootstrap s;
          Scenario.start_cbr s
            ~flows:[ (1, nodes - 1); (nodes - 1, 1) ]
            ~interval:0.5 ~duration:30.0 ();
          Scenario.run s ~until:(Engine.now (Scenario.engine s) +. 60.0);
          let det = Scenario.detector s in
          let a = Detector.score det ~truth:(Scenario.adversary_ids s) in
          Printf.printf
            "%-16s vs %-7s delivery %.2f  suspected %d  rejected %d  flagged \
             [%s]  precision %.2f recall %.2f\n"
            name pname (Scenario.delivery_ratio s)
            (Stats.get (Scenario.stats s) "secure.hostile_suspected")
            (Stats.get (Scenario.stats s) "secure.rreq_rejected"
            + Stats.get (Scenario.stats s) "secure.rrep_rejected")
            (String.concat ","
               (List.map string_of_int (Detector.suspects det)))
            a.Detector.precision a.Detector.recall)
        [ ("dsr", Scenario.Plain_dsr); ("secure", Scenario.Secure) ])
    [
      ("blackhole", Adversary.blackhole);
      ("grayhole-50", Adversary.grayhole 0.5);
      ("rerr-spam", Adversary.rerr_spammer ~every:1.0);
      ("churn", Adversary.identity_churner ~every:10.0);
    ]

let attacks_term = Term.(const attacks_cmd $ nodes_t $ seed_t)

(* --- report ---------------------------------------------------------------- *)

let report_cmd file top no_tree =
  let contents = In_channel.with_open_bin file In_channel.input_all in
  match Obs_report.parse_jsonl contents with
  | parsed ->
      let header field =
        match Json.member field parsed.Obs_report.header with
        | Some j -> Json.to_string j
        | None -> "?"
      in
      Printf.printf "trace %s  (schema %s v%s, %d spans, %d events)\n" file
        (header "schema") (header "version")
        (List.length parsed.Obs_report.spans)
        (List.length parsed.Obs_report.events);
      if not no_tree then begin
        Printf.printf "\n-- span tree ----------------------------------------\n";
        print_string (Obs_report.render_tree parsed)
      end;
      Printf.printf "\n-- phase latency ------------------------------------\n";
      print_string (Obs_report.render_phases parsed);
      Printf.printf "\n-- top %d slowest spans ------------------------------\n"
        top;
      print_string (Obs_report.render_top ~k:top parsed);
      `Ok ()
  | exception Json.Parse_error msg ->
      `Error (false, Printf.sprintf "%s: %s" file msg)
  | exception Sys_error msg -> `Error (false, msg)

let report_file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE.jsonl" ~doc:"A trace written by --jsonl-trace.")

let top_t =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K" ~doc:"How many slow spans to list.")

let no_tree_t =
  Arg.(
    value & flag
    & info [ "no-tree" ] ~doc:"Skip the span tree (large traces).")

let report_term = Term.(ret (const report_cmd $ report_file_t $ top_t $ no_tree_t))

(* --- audit ------------------------------------------------------------------ *)

let audit_cmd file no_timeline =
  let contents = In_channel.with_open_bin file In_channel.input_all in
  match Audit.parse_jsonl contents with
  | parsed ->
      let evs = parsed.Audit.parsed_events in
      let header field =
        match Json.member field parsed.Audit.header with
        | Some j -> Json.to_string j
        | None -> "?"
      in
      Printf.printf "audit %s  (schema %s v%s, %d events, %d dropped)\n" file
        (header "schema") (header "version") (List.length evs)
        (match Json.member "dropped" parsed.Audit.header with
        | Some (Json.Int d) -> d
        | _ -> 0);
      if not no_timeline then begin
        Printf.printf "\n-- timeline -----------------------------------------\n";
        print_string (Audit.render_timeline evs)
      end;
      Printf.printf "\n-- per-node scorecards ------------------------------\n";
      print_string (Audit.render_scorecards evs);
      (* Replaying the stream through a fresh detector reproduces the
         online verdicts exactly: the detector is a pure fold over the
         event sequence. *)
      let det = Detector.create () in
      List.iter (Detector.feed det) evs;
      Printf.printf "\n-- detector verdicts --------------------------------\n";
      print_string (Detector.render_verdicts det);
      `Ok ()
  | exception Json.Parse_error msg ->
      `Error (false, Printf.sprintf "%s: %s" file msg)
  | exception Sys_error msg -> `Error (false, msg)

let audit_file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"AUDIT.jsonl" ~doc:"A stream written by --audit-jsonl.")

let no_timeline_t =
  Arg.(
    value & flag
    & info [ "no-timeline" ] ~doc:"Skip the event timeline (large streams).")

let audit_term = Term.(ret (const audit_cmd $ audit_file_t $ no_timeline_t))

(* --- sweep ------------------------------------------------------------------ *)

module Sweep = Manetsec.Sweep
module Merge = Manetsec.Merge
module Parallel = Manetsec.Sim.Parallel
module Mono_clock = Manetsec.Sim.Mono_clock

let run_field r name =
  match List.assoc_opt name r.Merge.key with
  | Some j -> Json.to_string j
  | None -> "?"

let run_stat r name =
  match List.assoc_opt name r.Merge.stats with Some v -> v | None -> 0

let write_merged ~stats_csv ~audit_out ~trace_out ~perf_out ~timeline_out runs =
  (match stats_csv with
  | Some path ->
      write_file path (Merge.stats_csv runs);
      Printf.printf "stats csv           %s\n" path
  | None -> ());
  (match audit_out with
  | Some path ->
      write_file path (Merge.stream_jsonl ~name:"audit" runs);
      Printf.printf "audit jsonl         %s\n" path
  | None -> ());
  (match trace_out with
  | Some path ->
      write_file path (Merge.stream_jsonl ~name:"trace" runs);
      Printf.printf "trace jsonl         %s\n" path
  | None -> ());
  (match perf_out with
  | Some path ->
      write_file path (Merge.stream_jsonl ~name:"perf" runs);
      Printf.printf "perf jsonl          %s\n" path
  | None -> ());
  match timeline_out with
  | Some path ->
      write_file path (Merge.stream_jsonl ~name:"timeline" runs);
      Printf.printf "timeline jsonl      %s\n" path
  | None -> ()

let sweep_scenario file ~domains ~seeds ~stats_csv ~audit_out ~trace_out
    ~perf_out ~timeline_out =
  match load_scenario file with
  | Error msg -> `Error (false, msg)
  | Ok scn ->
      Printf.printf "sweep: scenario %s across %d seed(s) on %d domain(s)\n%!"
        scn.Scn.name (List.length seeds) domains;
      let t0 = Mono_clock.now_s () in
      let runs = Scn.sweep ~domains ~seeds scn in
      let wall = Mono_clock.now_s () -. t0 in
      List.iter
        (fun r ->
          Printf.printf "  %s seed=%-3s delivered %d/%d  dropped %d\n"
            (run_field r "scenario") (run_field r "seed")
            (run_stat r "data.delivered")
            (run_stat r "data.offered")
            (run_stat r "attack.data_dropped"))
        runs;
      Printf.printf "wall clock          %.2f s\n" wall;
      write_merged ~stats_csv ~audit_out ~trace_out ~perf_out ~timeline_out
        runs;
      `Ok ()

let sweep_cmd scenario_file domains e1_fractions e1_nodes e1_duration e6_sizes
    seeds stats_csv audit_out trace_out perf_out timeline_out =
  let domains = if domains <= 0 then Parallel.default_domains () else domains in
  match scenario_file with
  | Some file ->
      sweep_scenario file ~domains ~seeds ~stats_csv ~audit_out ~trace_out
        ~perf_out ~timeline_out
  | None ->
      let spec =
        { Sweep.e1_fractions; e1_nodes; e1_duration; e6_sizes; seeds }
      in
      let points = Sweep.points spec in
      Printf.printf "sweep: %d grid point(s) across %d domain(s)\n%!"
        (List.length points) domains;
      let t0 = Mono_clock.now_s () in
      let runs = Sweep.run ~domains spec in
      let wall = Mono_clock.now_s () -. t0 in
      List.iter
        (fun r ->
          Printf.printf
            "  %-4s n=%-3s fraction=%-4s seed=%-3s delivered %d/%d  configured \
             %d  dropped %d\n"
            (run_field r "experiment") (run_field r "n") (run_field r "fraction")
            (run_field r "seed")
            (run_stat r "data.delivered")
            (run_stat r "data.offered")
            (run_stat r "dad.configured")
            (run_stat r "attack.data_dropped"))
        runs;
      Printf.printf "wall clock          %.2f s\n" wall;
      write_merged ~stats_csv ~audit_out ~trace_out ~perf_out ~timeline_out
        runs;
      `Ok ()

let domains_t =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Concurrent domains to fan grid points across; 1 runs inline \
           (single-core fallback), 0 uses the host's recommended domain \
           count.  Merged exports are byte-identical at any value.")

let e1_fractions_t =
  Arg.(
    value
    & opt (list float) Sweep.default_spec.Sweep.e1_fractions
    & info [ "e1-fractions" ] ~docv:"F,..."
        ~doc:"E1 black-hole fractions; empty disables the E1 grid.")

let e1_nodes_t =
  Arg.(
    value
    & opt int Sweep.default_spec.Sweep.e1_nodes
    & info [ "e1-nodes" ] ~docv:"N" ~doc:"E1 network size.")

let e1_duration_t =
  Arg.(
    value
    & opt float Sweep.default_spec.Sweep.e1_duration
    & info [ "e1-duration" ] ~docv:"SECONDS"
        ~doc:"E1 CBR traffic duration (simulated).")

let e6_sizes_t =
  Arg.(
    value
    & opt (list int) Sweep.default_spec.Sweep.e6_sizes
    & info [ "e6-sizes" ] ~docv:"N,..."
        ~doc:"E6 network sizes; empty disables the E6 grid.")

let seeds_t =
  Arg.(
    value
    & opt (list int) Sweep.default_spec.Sweep.seeds
    & info [ "seeds" ] ~docv:"S,..." ~doc:"Seed replications per grid point.")

let sweep_stats_csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-csv" ] ~docv:"FILE"
        ~doc:"Write merged per-run counters as CSV.")

let sweep_audit_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "audit-jsonl" ] ~docv:"FILE"
        ~doc:"Write the merged audit streams of every run as JSONL.")

let sweep_trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:"Write the merged telemetry traces of every run as JSONL.")

let sweep_perf_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "perf-jsonl" ] ~docv:"FILE"
        ~doc:
          "Write the merged deterministic perf sections of every run as \
           JSONL (byte-identical at any --domains value).")

let sweep_timeline_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline-jsonl" ] ~docv:"FILE"
        ~doc:
          "Write the merged time-resolved telemetry streams of every run as \
           JSONL (byte-identical at any --domains value).")

let sweep_scenario_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "scenario" ] ~docv:"FILE"
        ~doc:
          "Fan a declarative scenario file across the --seeds list instead of \
           the E1/E6 grids (the e1-*/e6-* flags are ignored).")

let sweep_term =
  Term.(
    ret
      (const sweep_cmd $ sweep_scenario_t $ domains_t $ e1_fractions_t
     $ e1_nodes_t $ e1_duration_t $ e6_sizes_t $ seeds_t $ sweep_stats_csv_t
     $ sweep_audit_t $ sweep_trace_t $ sweep_perf_t $ sweep_timeline_t))

(* --- scenario check --------------------------------------------------------- *)

let scenario_check_cmd files =
  let failures =
    List.filter_map
      (fun file ->
        match load_scenario file with
        | Ok scn ->
            Printf.printf
              "ok %s  (%s: %d nodes, %d flow(s), %d adversar(ies), %d \
               fault(s), %d export(s))\n"
              file scn.Scn.name scn.Scn.nodes
              (List.length scn.Scn.flows)
              (List.length scn.Scn.adversaries)
              (List.length scn.Scn.faults)
              (List.length scn.Scn.exports);
            None
        | Error msg ->
            Printf.printf "error %s\n" msg;
            Some file)
      files
  in
  match failures with
  | [] -> `Ok ()
  | _ ->
      `Error
        (false, Printf.sprintf "%d invalid scenario file(s)" (List.length failures))

let scenario_files_t =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE" ~doc:"Scenario files to validate.")

let scenario_check_term = Term.(ret (const scenario_check_cmd $ scenario_files_t))

(* --- perf -------------------------------------------------------------------- *)

let jint ?(default = 0) j =
  match Json.to_int_opt j with Some i -> i | None -> default

let jmember_int name j = match Json.member name j with Some v -> jint v | None -> 0

let jpath doc path =
  List.fold_left
    (fun acc name -> Option.bind acc (Json.member name))
    (Some doc) path

(* Nearest-rank percentile over exported histogram buckets, mirroring
   {!Manetsec.Sim.Hist.percentile}: walk cumulative counts to the
   crossing bucket and interpolate linearly inside it. *)
let buckets_percentile buckets count q =
  if count = 0 then None
  else
    let rank =
      let r = int_of_float (ceil (q *. float_of_int count)) in
      if r < 1 then 1 else if r > count then count else r
    in
    let rec find cum = function
      | [] -> None
      | (lo, hi, c) :: rest ->
          if cum + c >= rank then
            let pos = rank - cum in
            Some (if c <= 1 then lo else lo + ((hi - lo) * (pos - 1) / (c - 1)))
          else find (cum + c) rest
    in
    find 0 buckets

let render_hist title j =
  let buckets =
    match Json.member "buckets" j with
    | Some (Json.List l) ->
        List.filter_map
          (fun b ->
            match b with
            | Json.List [ lo; hi; c ] -> Some (jint lo, jint hi, jint c)
            | _ -> None)
          l
    | _ -> []
  in
  Printf.printf "\n-- %s %s\n" title
    (String.make (max 0 (51 - String.length title)) '-');
  let mean =
    match Json.member "mean" j with
    | Some (Json.Float f) -> Printf.sprintf "%.1f" f
    | Some (Json.Int i) -> Printf.sprintf "%d.0" i
    | _ -> "-"
  in
  (* Clamp like Hist.percentile: bucket interpolation can overshoot the
     largest sample actually recorded. *)
  let vmax = jmember_int "max" j in
  let pct q =
    match buckets_percentile buckets (jmember_int "count" j) q with
    | Some v -> string_of_int (min v vmax)
    | None -> "-"
  in
  Printf.printf "samples %d  sum %d  mean %s  max %d\n" (jmember_int "count" j)
    (jmember_int "sum" j) mean (jmember_int "max" j);
  Printf.printf "p50 %s  p95 %s  p99 %s\n" (pct 0.5) (pct 0.95) (pct 0.99);
  let cmax = List.fold_left (fun acc (_, _, c) -> max acc c) 1 buckets in
  List.iter
    (fun (lo, hi, c) ->
      let width = c * 40 / cmax in
      Printf.printf "%8d..%-8d %10d  %s\n" lo hi c (String.make width '#'))
    buckets

let perf_render file doc top =
  Printf.printf "perf %s  (schema %s v%d)\n" file
    (match jpath doc [ "schema" ] with
    | Some (Json.String s) -> s
    | _ -> "?")
    (match jpath doc [ "version" ] with
    | Some v -> jint ~default:Perf.schema_version v
    | None -> 0);
  let det =
    match Json.member "deterministic" doc with Some d -> d | None -> Json.Null
  in
  let wall =
    match Json.member "wall_clock" doc with Some w -> w | None -> Json.Null
  in
  (* Per-label table: deterministic counts joined with wall profile
     seconds when the run was profiled. *)
  let labels =
    match jpath det [ "events"; "labels" ] with
    | Some (Json.Obj fields) -> List.map (fun (l, v) -> (l, jint v)) fields
    | _ -> []
  in
  let profile =
    match Json.member "profile" wall with
    | Some (Json.List l) ->
        List.filter_map
          (fun e ->
            match
              (Json.member "label" e, Json.member "wall_s" e)
            with
            | Some (Json.String l), Some w ->
                Option.map (fun f -> (l, f)) (Json.to_float_opt w)
            | _ -> None)
          l
    | _ -> []
  in
  Printf.printf "\n-- events by label ----------------------------------\n";
  Printf.printf "%-12s %10s %12s\n" "label" "events" "wall ms";
  List.iter
    (fun (l, c) ->
      match List.assoc_opt l profile with
      | Some w -> Printf.printf "%-12s %10d %12.3f\n" l c (w *. 1000.0)
      | None -> Printf.printf "%-12s %10d %12s\n" l c "-")
    labels;
  Printf.printf "%-12s %10d  (max pending %d)\n" "total"
    (match jpath det [ "events"; "total" ] with Some v -> jint v | None -> 0)
    (match jpath det [ "events"; "max_pending" ] with
    | Some v -> jint v
    | None -> 0);
  (* Top-k hottest: by wall seconds when profiled, else by event count. *)
  let hottest =
    if profile <> [] then
      List.map (fun (l, w) -> (l, Printf.sprintf "%.3f ms" (w *. 1000.0)))
        (List.filteri
           (fun i _ -> i < top)
           (List.sort (fun (_, a) (_, b) -> Float.compare b a) profile))
    else
      List.map (fun (l, c) -> (l, Printf.sprintf "%d events" c))
        (List.filteri
           (fun i _ -> i < top)
           (List.sort (fun (_, a) (_, b) -> Int.compare b a) labels))
  in
  Printf.printf "\n-- top %d hottest labels -----------------------------\n" top;
  List.iter (fun (l, v) -> Printf.printf "%-12s %s\n" l v) hottest;
  (match jpath det [ "net"; "neighbour_scan" ] with
  | Some h -> render_hist "neighbour scan lengths" h
  | None -> ());
  (match jpath det [ "net"; "fanout" ] with
  | Some h -> render_hist "broadcast fan-out" h
  | None -> ());
  (match jpath det [ "net" ] with
  | Some n ->
      Printf.printf "retries %d  transmissions %d  deliveries %d\n"
        (jmember_int "retries" n)
        (jmember_int "transmissions" n)
        (jmember_int "deliveries" n)
  | None -> ());
  (* Crypto: per message kind. *)
  (match jpath det [ "crypto"; "by_kind" ] with
  | Some (Json.Obj kinds) when kinds <> [] ->
      Printf.printf "\n-- crypto by message kind ---------------------------\n";
      Printf.printf "%-12s %10s %10s %12s\n" "kind" "signs" "verifies"
        "hash blocks";
      List.iter
        (fun (kind, v) ->
          Printf.printf "%-12s %10d %10d %12d\n" kind (jmember_int "signs" v)
            (jmember_int "verifies" v)
            (jmember_int "hash_blocks" v))
        kinds
  | _ -> ());
  (* Flood provenance: the aggregate accounting the timeline stream
     details per flood. *)
  (match jpath det [ "floods" ] with
  | Some f ->
      let jf name =
        match Json.member name f with
        | Some v -> (
            match Json.to_float_opt v with Some x -> x | None -> 0.0)
        | None -> 0.0
      in
      Printf.printf "\n-- floods -------------------------------------------\n";
      Printf.printf
        "floods %d (areq %d, rreq %d)  sent %d  received %d  suppressed %d  \
         verifies %d\n"
        (jmember_int "count" f) (jmember_int "areq" f) (jmember_int "rreq" f)
        (jmember_int "copies_sent" f)
        (jmember_int "copies_received" f)
        (jmember_int "duplicates_suppressed" f)
        (jmember_int "verifies" f);
      Printf.printf "duplicate verifies per flood   %.3f\n"
        (jf "duplicate_verifies_per_flood");
      Printf.printf "flood redundancy ratio         %.3f\n"
        (jf "flood_redundancy_ratio")
  | None -> ());
  (* GC/alloc: deterministic event counts per phase joined with the
     wall-clock allocation words for that phase. *)
  Printf.printf "\n-- gc / alloc ---------------------------------------\n";
  Printf.printf "%-12s %10s %14s %12s\n" "phase" "events" "minor words"
    "words/event";
  (match jpath det [ "phases" ] with
  | Some (Json.Obj phases) ->
      List.iter
        (fun (name, p) ->
          let events = jmember_int "events" p in
          let words =
            match jpath wall [ "gc"; "phases"; name; "minor_words" ] with
            | Some w -> ( match Json.to_float_opt w with Some f -> f | None -> 0.0)
            | None -> 0.0
          in
          Printf.printf "%-12s %10d %14.0f %12.1f\n" name events words
            (if events = 0 then 0.0 else words /. float_of_int events))
        phases
  | _ -> ());
  match Json.member "gc" wall with
  | Some g ->
      Printf.printf "heap %d words (peak %d), %d minor / %d major collections\n"
        (jmember_int "heap_words" g)
        (jmember_int "top_heap_words" g)
        (jmember_int "minor_collections" g)
        (jmember_int "major_collections" g)
  | None -> ()

let perf_cmd file det top =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg -> `Error (false, msg)
  | contents -> (
      match Json.parse contents with
      | exception Json.Parse_error msg ->
          `Error (false, Printf.sprintf "%s: %s" file msg)
      | doc -> (
          (match jpath doc [ "schema" ] with
          | Some (Json.String s) when s = Perf.schema -> ()
          | _ ->
              prerr_endline
                (Printf.sprintf "warning: %s does not declare schema %s" file
                   Perf.schema));
          match Json.member "deterministic" doc with
          | None -> `Error (false, file ^ ": no deterministic section")
          | Some detj ->
              if det then begin
                (* Canonical re-render of the deterministic section only:
                   the byte-stable form CI cmp's across runs and domain
                   counts. *)
                print_string (Json.to_string detj);
                print_newline ();
                `Ok ()
              end
              else begin
                perf_render file doc top;
                `Ok ()
              end))

let perf_file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PERF.json" ~doc:"An export written by --perf-json.")

let det_t =
  Arg.(
    value & flag
    & info [ "det" ]
        ~doc:
          "Print only the canonical deterministic section (byte-identical \
           across same-seed replays; what the CI determinism gates compare).")

let perf_term = Term.(ret (const perf_cmd $ perf_file_t $ det_t $ top_t))

(* --- timeline ----------------------------------------------------------------- *)

let parse_jsonl_lines contents =
  String.split_on_char '\n' contents
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map Json.parse

(* Split a stream into runs.  A plain --timeline-jsonl file is one run
   opened by its schema header; a sweep-merged file carries a stream
   wrapper line, then per-run lines of the form
   [{"run":N, <key...>, "source":<original header>}] — the embedded
   source (which already carries the run's meta) becomes that run's
   header. *)
let split_timeline_runs lines =
  List.fold_left
    (fun acc j ->
      match Json.member "source" j with
      | Some src -> (src, []) :: acc
      | None -> (
          match Json.member "schema" j with
          | Some (Json.String s) when s = Timeline.schema -> (j, []) :: acc
          | Some _ -> acc (* the sweep stream wrapper line *)
          | None -> (
              match acc with
              | (h, body) :: rest -> (h, j :: body) :: rest
              | [] -> acc)))
    [] lines
  |> List.rev_map (fun (h, body) -> (h, List.rev body))

let spark_levels = " .:-=+*#%@"

(* ASCII sparkline: buckets grouped to at most 64 columns (sums within
   a group), each column scaled against the series maximum. *)
let sparkline values =
  let n = Array.length values in
  if n = 0 then ""
  else begin
    let group = (n + 63) / 64 in
    let cols = (n + group - 1) / group in
    let agg = Array.make cols 0 in
    Array.iteri (fun i v -> agg.(i / group) <- (agg.(i / group) + v)) values;
    let vmax = Array.fold_left max 1 agg in
    String.init cols (fun i ->
        let v = agg.(i) in
        if v = 0 then ' ' else spark_levels.[min 9 (1 + (v * 8 / vmax))])
  end

let is_record kind j =
  match Json.member "type" j with
  | Some (Json.String s) -> String.equal s kind
  | _ -> false

let jfloat ?(default = 0.0) j =
  match Json.to_float_opt j with Some f -> f | None -> default

let jmember_float name j =
  match Json.member name j with Some v -> jfloat v | None -> 0.0

let render_timeline_run ~top header body =
  let width =
    match Json.member "width" header with
    | Some w -> jfloat ~default:1.0 w
    | None -> 1.0
  in
  let meta =
    List.filter_map
      (fun name ->
        Option.map
          (fun v -> Printf.sprintf "%s=%s" name (Json.to_string v))
          (Json.member name header))
      [ "scenario"; "experiment"; "n"; "fraction"; "seed" ]
  in
  let bucketsj = List.filter (is_record "bucket") body in
  let floodsj = List.filter (is_record "flood") body in
  let summaryj = List.find_opt (is_record "flood_summary") body in
  let imax = List.fold_left (fun acc j -> max acc (jmember_int "i" j)) 0 bucketsj in
  Printf.printf "run %s (width %gs, %d bucket(s), %d flood(s))\n"
    (if meta = [] then "-" else String.concat " " meta)
    width (List.length bucketsj) (List.length floodsj);
  let series name =
    let a = Array.make (imax + 1) 0 in
    List.iter
      (fun j -> a.(jmember_int "i" j) <- a.(jmember_int "i" j) + jmember_int name j)
      bucketsj;
    a
  in
  Printf.printf "\n-- series (per %gs window) --------------------------\n" width;
  Printf.printf "%-13s %10s %8s\n" "series" "total" "max/w";
  List.iter
    (fun name ->
      let a = series name in
      let total = Array.fold_left ( + ) 0 a in
      let vmax = Array.fold_left max 0 a in
      if total > 0 then
        Printf.printf "%-13s %10d %8d  |%s|\n" name total vmax (sparkline a))
    [
      "events"; "deliveries"; "transmissions"; "drops"; "signs"; "verifies";
      "hash_blocks"; "audit";
    ];
  if floodsj <> [] then begin
    (* Cost of a flood: radio copies it put on the air plus the crypto
       verifications it triggered. *)
    let cost j = jmember_int "received" j + jmember_int "verifies" j in
    let tops =
      List.filteri
        (fun i _ -> i < top)
        (List.sort (fun a b -> Int.compare (cost b) (cost a)) floodsj)
    in
    Printf.printf "\n-- top %d floods by cost (received + verifies) -------\n"
      top;
    Printf.printf "%4s %-5s %6s %9s %6s %6s %6s %7s %7s %6s\n" "id" "kind"
      "origin" "start" "sent" "recv" "dup" "verify" "reached" "radius";
    List.iter
      (fun j ->
        Printf.printf "%4d %-5s %6d %9.2f %6d %6d %6d %7d %7d %6d\n"
          (jmember_int "id" j)
          (match Json.member "kind" j with
          | Some (Json.String s) -> s
          | _ -> "?")
          (jmember_int "origin" j)
          (jmember_float "start" j)
          (jmember_int "sent" j) (jmember_int "received" j)
          (jmember_int "duplicates" j)
          (jmember_int "verifies" j)
          (jmember_int "reached" j)
          (jmember_int "hop_radius" j))
      tops
  end;
  (match summaryj with
  | Some s -> (
      match Json.member "floods" s with
      | Some f ->
          Printf.printf
            "\nfloods %d  duplicate verifies per flood %.3f  redundancy \
             ratio %.3f\n"
            (jmember_int "count" f)
            (jmember_float "duplicate_verifies_per_flood" f)
            (jmember_float "flood_redundancy_ratio" f)
      | None -> ())
  | None -> ());
  print_newline ()

let timeline_cmd file top =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg -> `Error (false, msg)
  | contents -> (
      match parse_jsonl_lines contents with
      | exception Json.Parse_error msg ->
          `Error (false, Printf.sprintf "%s: %s" file msg)
      | lines -> (
          match split_timeline_runs lines with
          | [] -> `Error (false, file ^ ": no timeline header line")
          | runs ->
              List.iter
                (fun (h, _) ->
                  match Json.member "schema" h with
                  | Some (Json.String s) when s = Timeline.schema -> ()
                  | _ ->
                      prerr_endline
                        (Printf.sprintf
                           "warning: %s does not declare schema %s" file
                           Timeline.schema))
                runs;
              Printf.printf "timeline %s  (%d run(s))\n\n" file
                (List.length runs);
              List.iter (fun (h, body) -> render_timeline_run ~top h body) runs;
              `Ok ()))

let timeline_file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TIMELINE.jsonl"
        ~doc:"A stream written by --timeline-jsonl (run or sweep).")

let timeline_term = Term.(ret (const timeline_cmd $ timeline_file_t $ top_t))

(* --- command tree ----------------------------------------------------------- *)

let cmds =
  [
    Cmd.v
      (Cmd.info "run" ~doc:"Bootstrap a MANET and run CBR traffic, with optional adversaries.")
      run_term;
    Cmd.v
      (Cmd.info "dad" ~doc:"Run secure bootstrapping only; optionally force a duplicate address.")
      dad_term;
    Cmd.v
      (Cmd.info "attacks" ~doc:"Run the canned attack behaviours against both protocols.")
      attacks_term;
    Cmd.v
      (Cmd.info "sweep"
         ~doc:
           "Fan the E1/E6 experiment grids — or a scenario file across a \
            seed list — over concurrent domains and merge stats, audit and \
            telemetry exports deterministically (byte-identical at any \
            --domains value).")
      sweep_term;
    Cmd.group
      (Cmd.info "scenario"
         ~doc:"Work with declarative scenario files (see examples/scenarios/).")
      [
        Cmd.v
          (Cmd.info "check"
             ~doc:
               "Parse and validate scenario files, rejecting malformed input \
                with positioned (line:column) errors.")
          scenario_check_term;
      ];
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Query an exported JSONL trace: span tree, per-phase latency \
            percentiles, top-k slow spans.")
      report_term;
    Cmd.v
      (Cmd.info "perf"
         ~doc:
           "Query a --perf-json export: per-label event table, top-k hottest \
            labels, neighbour-scan and fan-out histograms, GC/alloc \
            accounting.")
      perf_term;
    Cmd.v
      (Cmd.info "timeline"
         ~doc:
           "Query a --timeline-jsonl export: sparkline table per windowed \
            series, top-k floods by propagation cost, flood aggregate \
            metrics (handles sweep-merged streams).")
      timeline_term;
    Cmd.v
      (Cmd.info "audit"
         ~doc:
           "Query an exported security audit stream: event timeline, \
            per-node scorecards, offline detector verdicts.")
      audit_term;
  ]

let () =
  let info =
    Cmd.info "manetsim" ~version:"1.0.0"
      ~doc:"Secure bootstrapping and routing in an IPv6-based ad hoc network (simulator)"
  in
  exit (Cmd.eval (Cmd.group info cmds))
