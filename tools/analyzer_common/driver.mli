(** Shared analyzer CLI driver.

    Usage of every analyzer executable:
    {v
    main.exe [--baseline FILE] [--write-baseline] [--json FILE]
             [--uses DIR]... [TOOL-OPTS] [ROOT]...
    v}

    ROOTs (default [lib]) are analyzed; [--uses] dirs (only accepted
    when the tool declares [default_uses]) are parsed as reference
    points only.  Exit 1 on any finding not pinned in the baseline, or
    on stale baseline entries — a pinned key whose finding no longer
    fires fails the build too, so fixed findings must leave the
    baseline in the same commit. *)

val read_file : string -> string
(** Whole file contents, binary-safe. *)

val gather : string list -> (string * string) list
(** All [.ml]/[.mli] files under the given roots (skipping [_build] and
    dotfiles), sorted, as (path, content) pairs. *)

val run :
  tool:string ->
  ?default_roots:string list ->
  ?default_uses:string list ->
  ?options:(string * string ref) list ->
  analyze:
    (uses:(string * string) list ->
    (string * string) list ->
    Common.finding list) ->
  unit ->
  unit
(** [run ~tool ~analyze ()] is the whole CLI.  The baseline default is
    [tools/<tool>/baseline].  [options] declares extra one-argument
    flags (e.g. manethot's [--hotpaths FILE]): the matched value is
    stored in the given ref before [analyze] runs. *)
