(** The discrete-event simulation engine.

    Time is a float in seconds.  Events are closures ordered by firing
    time (FIFO among equal times).  The engine owns the run's PRNG root,
    the {!Stats} registry and the {!Trace} buffer so every protocol
    module can reach them through the one engine value. *)

type t

val create : seed:int -> unit -> t
(** Fresh engine at time 0 with a PRNG derived from [seed]. *)

val now : t -> float
val rng : t -> Manet_crypto.Prng.t
(** The engine's own stream; subsystems should {!Manet_crypto.Prng.split}
    it rather than share it. *)

val stats : t -> Stats.t
val trace : t -> Trace.t

val schedule : t -> ?label:string -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    Raises [Invalid_argument] on negative delay.  [label] names the
    event class for the wall-clock profiler (default ["other"]); it has
    no effect on event ordering. *)

val schedule_at : t -> ?label:string -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events in order until the queue is empty, simulated time
    would pass [until], or [max_events] have fired.  Events scheduled
    beyond [until] remain queued, so [run] can be called again. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int

(** {1 Deterministic perf accounting}

    Always-on counters consumed by the perf registry
    ([lib/obs/perf.ml]).  They are pure functions of the event sequence
    — no clock reads, no PRNG draws — so they are byte-identical across
    replays of the same seed and across domain counts, and keeping them
    on perturbs nothing. *)

val label_counts : t -> (string * int) list
(** Processed events per schedule label, sorted by label. *)

val occupancy : t -> (int * int) list
(** The sampled scheduler occupancy series, oldest first:
    [(processed_index, pending_after_pop)] taken every
    {!occupancy_stride} events.  The series decimates itself (stride
    doubles) to stay within a fixed capacity, deterministically. *)

val occupancy_stride : t -> int
(** Current sampling stride (starts at 1, doubles on decimation). *)

val max_pending : t -> int
(** High-water mark of the event queue depth. *)

val set_on_event : t -> (float -> unit) option -> unit
(** Install (or clear) a per-event observer.  The hook fires once per
    processed event with the event's timestamp, after the clock advances
    and before the event is counted or its closure runs — so an observer
    closing a time bucket at event [e] sees counter state that excludes
    [e] entirely.  The hook must be a pure function of the event
    sequence if its output feeds a deterministic export, and must not
    allocate per event (it sits on the manethot hot path).  The timeline
    layer ([lib/obs/timeline.ml]) is the intended client. *)

(** {1 Wall-clock profiling}

    Opt-in accounting of host time spent per event class.  The samples
    come from {!Mono_clock} and are stored in a side table: turning
    profiling on or off changes no event order, PRNG draw, stat counter
    or trace byte, so replay determinism is untouched.  Profile data
    surfaces only in the JSON run report (which is not byte-stable),
    never in the deterministic JSONL trace. *)

type profile_entry = { p_count : int; p_wall_s : float }

val set_profiling : t -> bool -> unit
(** Default off.  While off, {!run} samples no clock at all. *)

val profiling : t -> bool

val profile : t -> (string * profile_entry) list
(** Per-label event count and accumulated wall seconds, sorted by
    label.  Empty unless profiling was on during a {!run}. *)

val wall_in_run : t -> float
(** Total wall seconds spent inside {!run} while profiling was on. *)

val events_per_sec : t -> float
(** Profiled events divided by {!wall_in_run}; 0 when nothing was
    profiled. *)

val log : t -> node:int -> event:string -> detail:string -> unit
(** Convenience: trace at the current simulated time. *)
