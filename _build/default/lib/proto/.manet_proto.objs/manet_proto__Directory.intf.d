lib/proto/directory.mli: Manet_ipv6
