module Address = Manet_ipv6.Address
module Cga = Manet_ipv6.Cga
module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Ctx = Manet_proto.Node_ctx
module Identity = Manet_proto.Identity
module Audit = Manet_obs.Audit
module Engine = Manet_sim.Engine
module Obs = Manet_obs.Obs
module Dad = Manet_dad.Dad

type config = { commit_wait : float }

let default_config = { commit_wait = 1.5 }

type pending_reg = {
  reg_dn : string;
  reg_sip : Address.t;
  reg_ch : int64;
  mutable reg_cancelled : bool;
  reg_span : int option; (* dns.registration telemetry span *)
}

type pending_change = { chg_ch : int64; chg_old : Address.t; chg_new : Address.t }

type t = {
  ctx : Ctx.t;
  config : config;
  table : (string, Address.t) Hashtbl.t;
  permanent : (string, unit) Hashtbl.t;
  (* pending registrations, indexed both ways *)
  pending_by_sip : (string, pending_reg) Hashtbl.t;
  pending_by_dn : (string, pending_reg) Hashtbl.t;
  pending_changes : (string, pending_change) Hashtbl.t;
  (* Duplicate warnings can outrun the flooded AREQ they refer to (the
     warning travels point-to-point while the AREQ sits in relay jitter
     queues), so unmatched warnings are stashed briefly and re-checked
     when the AREQ arrives. *)
  stashed_warnings : (string, float * Messages.t) Hashtbl.t;
}

let create ?(config = default_config) ctx =
  {
    ctx;
    config;
    table = Hashtbl.create 64;
    permanent = Hashtbl.create 16;
    pending_by_sip = Hashtbl.create 16;
    pending_by_dn = Hashtbl.create 16;
    pending_changes = Hashtbl.create 16;
    stashed_warnings = Hashtbl.create 16;
  }

let preload t ~name addr =
  Hashtbl.replace t.table name addr;
  Hashtbl.replace t.permanent name ()

let lookup t name = Hashtbl.find_opt t.table name

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)


let sip_key = Codec.addr

let obs t = t.ctx.Ctx.obs

let finish_reg_span t reg outcome =
  match reg.reg_span with
  | Some id -> Obs.finish (obs t) id outcome
  | None -> ()

let send_drep t ~sip ~dn ~ch ~rr =
  let ctx = t.ctx in
  let sig_ = Identity.sign ctx.Ctx.identity (Codec.drep_payload ~dn ~ch) in
  let back_path = List.rev rr @ [ sip ] in
  Ctx.stat ctx "dns.drep_sent";
  Ctx.log ctx ~event:"dns.name_conflict" ~detail:dn;
  (* DREP span: child of the initiator's AREQ flood span (the DN rides
     the AREQ), open until the initiator verifies the reply. *)
  let o = obs t in
  let parent = Obs.lookup o (Dad.flood_key ~sip ~ch) in
  let drep_span =
    Obs.start o ?parent ~kind:"dns.drep" ~node:(Ctx.node_id ctx)
      ~detail:("dn=" ^ dn) ()
  in
  Obs.correlate o (Dad.drep_corr sig_) drep_span;
  Ctx.send_along ctx ~path:back_path
    (Messages.Drep { sip; dn; rr; remaining = back_path; sig_ })

let drop_pending t reg =
  Hashtbl.remove t.pending_by_sip (sip_key reg.reg_sip);
  Hashtbl.remove t.pending_by_dn reg.reg_dn

let commit_pending t reg =
  if not reg.reg_cancelled then begin
    Hashtbl.replace t.table reg.reg_dn reg.reg_sip;
    Ctx.stat t.ctx "dns.registered";
    finish_reg_span t reg Obs.Ok;
    Ctx.log t.ctx ~event:"dns.registered"
      ~detail:(Printf.sprintf "%s -> %s" reg.reg_dn (Address.to_string reg.reg_sip))
  end;
  drop_pending t reg

(* --- §3.1 integration: AREQ observation and duplicate warnings -------- *)

let verify_warning t ~sip ~sig_ ~pk ~rn ~ch =
  let suite = Ctx.suite t.ctx in
  Suite.count_hash suite ~bytes:(String.length pk + 8);
  Cga.verify sip ~pk_bytes:pk ~rn
  && suite.Suite.verify ~pk_bytes:pk
       ~msg:(Codec.arep_payload ~sip ~ch)
       ~signature:sig_

let stash_window t = 4.0 *. t.config.commit_wait

let stash_warning t ~sip msg =
  let now = Engine.now t.ctx.Ctx.engine in
  (* Prune expired stashes opportunistically. *)
  let expired =
    List.sort String.compare
      (Hashtbl.fold
         (fun k (when_, _) acc ->
           if now -. when_ > stash_window t then k :: acc else acc)
         t.stashed_warnings [])
  in
  List.iter (Hashtbl.remove t.stashed_warnings) expired;
  Hashtbl.replace t.stashed_warnings (sip_key sip) (now, msg)

let stashed_warning_applies t ~sip ~ch =
  match Hashtbl.find_opt t.stashed_warnings (sip_key sip) with
  | None -> false
  | Some (when_, Messages.Arep { sip = wsip; sig_; pk; rn; _ })
    when Engine.now t.ctx.Ctx.engine -. when_ <= stash_window t
         && Address.equal wsip sip ->
      verify_warning t ~sip ~sig_ ~pk ~rn ~ch
  | Some _ -> false

let observe_areq t msg =
  match msg with
  | Messages.Areq { sip; dn = Some dn; ch; rr; _ } -> (
      let conflict_with other = not (Address.equal other sip) in
      match (Hashtbl.find_opt t.table dn, Hashtbl.find_opt t.pending_by_dn dn) with
      | Some bound, _ when conflict_with bound -> send_drep t ~sip ~dn ~ch ~rr
      | None, Some reg when conflict_with reg.reg_sip ->
          (* An earlier, still-pending claimant wins: first come first
             served. *)
          send_drep t ~sip ~dn ~ch ~rr
      | Some _, _ -> () (* same host re-registering *)
      | None, Some _ -> () (* same host's own pending retry *)
      | None, None when stashed_warning_applies t ~sip ~ch ->
          (* A verified duplicate warning already arrived for this
             address: refuse the registration outright. *)
          Hashtbl.remove t.stashed_warnings (sip_key sip);
          Ctx.audit t.ctx ~kind:Audit.Dns_conflict ~subject:sip
            ~stats:[ "dns.registration_cancelled" ]
            ~cause:"registration refused: verified duplicate warning on file"
            ();
          Ctx.log t.ctx ~event:"dns.warning"
            ~detail:(Printf.sprintf "stashed duplicate %s" (Address.to_string sip))
      | None, None ->
          let span =
            let o = obs t in
            Some
              (Obs.start o
                 ?parent:(Obs.lookup o (Dad.flood_key ~sip ~ch))
                 ~kind:"dns.registration"
                 ~node:(Ctx.node_id t.ctx)
                 ~detail:("dn=" ^ dn) ())
          in
          let reg =
            {
              reg_dn = dn;
              reg_sip = sip;
              reg_ch = ch;
              reg_cancelled = false;
              reg_span = span;
            }
          in
          Hashtbl.replace t.pending_by_sip (sip_key sip) reg;
          Hashtbl.replace t.pending_by_dn dn reg;
          Ctx.stat t.ctx "dns.pending";
          Engine.schedule t.ctx.Ctx.engine ~label:"dns"
            ~delay:t.config.commit_wait (fun () ->
              (* Only commit if this exact registration is still current. *)
              match Hashtbl.find_opt t.pending_by_dn dn with
              | Some r when r == reg -> commit_pending t reg
              | _ -> ()))
  | _ -> ()

let consume_warning t msg =
  match msg with
  | Messages.Arep { sip; sig_; pk; rn; _ } -> (
      match Hashtbl.find_opt t.pending_by_sip (sip_key sip) with
      | None ->
          (* Possibly ahead of its AREQ: keep it for a while. *)
          (* manetsem: allow taint — the stash is quarantine, not trust:
             a stashed warning only affects a registration decision after
             stashed_warning_applies re-checks its CGA binding and
             signature against the later AREQ's challenge. *)
          stash_warning t ~sip msg;
          Ctx.stat t.ctx "dns.warning_stashed"
      | Some reg ->
          let valid = verify_warning t ~sip ~sig_ ~pk ~rn ~ch:reg.reg_ch in
          if valid then begin
            reg.reg_cancelled <- true;
            drop_pending t reg;
            finish_reg_span t reg (Obs.Rejected "duplicate warning");
            Ctx.audit t.ctx ~kind:Audit.Dns_conflict ~subject:sip
              ~stats:[ "dns.registration_cancelled" ]
              ~cause:"pending registration cancelled by duplicate warning" ();
            Ctx.log t.ctx ~event:"dns.warning"
              ~detail:(Printf.sprintf "duplicate %s" (Address.to_string sip))
          end
          else
            Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
              ~stats:[ "dns.warning_rejected" ]
              ~cause:"duplicate-warning arep binding or signature" ())
  | _ -> ()

let attach t dad =
  Manet_dad.Dad.set_areq_observer dad (observe_areq t);
  Manet_dad.Dad.set_warning_sink dad (consume_warning t)

(* --- §3.2: routed services -------------------------------------------- *)

let reply_path ~route ~requester = List.rev route @ [ requester ]

let serve_name_query t ~requester ~name ~ch ~route =
  let ctx = t.ctx in
  let result = lookup t name in
  let sig_ =
    Identity.sign ctx.Ctx.identity (Codec.name_reply_payload ~name ~result ~ch)
  in
  Ctx.stat ctx "dns.queries";
  let path = reply_path ~route ~requester in
  Ctx.send_along ctx ~path
    (Messages.Name_reply { requester; name; result; ch; remaining = path; sig_ })

let change_key ~old_ip ~new_ip = Codec.addr old_ip ^ Codec.addr new_ip

let serve_ip_change_request t ~old_ip ~new_ip ~route =
  let ctx = t.ctx in
  let ch = Prng.bits64 ctx.Ctx.rng in
  Hashtbl.replace t.pending_changes (change_key ~old_ip ~new_ip)
    { chg_ch = ch; chg_old = old_ip; chg_new = new_ip };
  Ctx.stat ctx "dns.ip_change_challenged";
  let path = reply_path ~route ~requester:old_ip in
  Ctx.send_along ctx ~path
    (Messages.Ip_change_challenge { old_ip; new_ip; ch; remaining = path })

let serve_ip_change_proof t ~old_ip ~new_ip ~old_rn ~new_rn ~pk ~sig_ ~route =
  let ctx = t.ctx in
  let key = change_key ~old_ip ~new_ip in
  let accepted =
    match Hashtbl.find_opt t.pending_changes key with
    | None -> false
    | Some chg ->
        let suite = Ctx.suite ctx in
        let cga_ok ip rn =
          Suite.count_hash suite ~bytes:(String.length pk + 8);
          Cga.verify ip ~pk_bytes:pk ~rn
        in
        cga_ok old_ip old_rn
        && cga_ok new_ip new_rn
        && suite.Suite.verify ~pk_bytes:pk
             ~msg:(Codec.ip_change_payload ~old_ip ~new_ip ~ch:chg.chg_ch)
             ~signature:sig_
  in
  Hashtbl.remove t.pending_changes key;
  if accepted then begin
    (* Rebind every name mapped to the old address. *)
    let renames =
      List.sort String.compare
        (Hashtbl.fold
           (fun dn addr acc ->
             if Address.equal addr old_ip then dn :: acc else acc)
           t.table [])
    in
    List.iter (fun dn -> Hashtbl.replace t.table dn new_ip) renames;
    Ctx.stat ctx "dns.ip_changed";
    Ctx.log ctx ~event:"dns.ip_changed"
      ~detail:
        (Printf.sprintf "%s -> %s (%d names)" (Address.to_string old_ip)
           (Address.to_string new_ip) (List.length renames))
  end
  else
    Ctx.audit ctx ~kind:Audit.Sig_verify_fail
      ~stats:[ "dns.ip_change_rejected" ]
      ~cause:
        ("ip-change proof for "
        ^ Address.to_string old_ip
        ^ ": CGA bindings or challenge signature")
      ();
  (* The ack goes back to whoever holds the *old* address' return route;
     the proof's route field is the requester's path to us. *)
  let path = reply_path ~route ~requester:old_ip in
  Ctx.send_along ctx ~path
    (Messages.Ip_change_ack { old_ip; new_ip; accepted; remaining = path })

let handle t ~src msg =
  match msg with
  | Messages.Name_query _ | Messages.Ip_change_request _
  | Messages.Ip_change_proof _ ->
      Ctx.deliver_up t.ctx ~src msg
        ~consume:(fun m ->
          match m with
          | Messages.Name_query { requester; name; ch; route; _ } ->
              serve_name_query t ~requester ~name ~ch ~route
          | Messages.Ip_change_request { old_ip; new_ip; route; _ } ->
              serve_ip_change_request t ~old_ip ~new_ip ~route
          | Messages.Ip_change_proof { old_ip; new_ip; old_rn; new_rn; pk; sig_; route; _ } ->
              serve_ip_change_proof t ~old_ip ~new_ip ~old_rn ~new_rn ~pk ~sig_
                ~route
          | _ -> ())
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  (* AREQ observation and duplicate warnings arrive through observe_areq
     and consume_warning (wired by Scenario), not this dispatch; the
     rest is enumerated so new constructors fail the manetsem dispatch
     rule rather than vanish here. *)
  | Messages.Areq _ | Messages.Arep _ | Messages.Drep _ | Messages.Rreq _
  | Messages.Rrep _ | Messages.Crep _ | Messages.Rerr _ | Messages.Data _
  | Messages.Ack _ | Messages.Probe _ | Messages.Probe_reply _
  | Messages.Name_reply _ | Messages.Ip_change_challenge _
  | Messages.Ip_change_ack _ -> ()
