(** Public facade: one namespace over every subsystem of the
    reproduction.

    - {!Crypto}: PRNG, bignums, SHA-256, HMAC, RSA and the signature
      suite abstraction.
    - {!Ipv6}: addresses and cryptographically generated addresses
      (CGA, Figure 1).
    - {!Sim}: the discrete-event engine, topologies, mobility, the
      simulated radio, stats and traces.
    - {!Obs} / {!Obs_json} / {!Obs_report}: causal telemetry spans,
      the hand-rolled JSON codec, and JSONL / run-report export and
      querying.
    - {!Audit} / {!Metrics} / {!Detector}: the security observability
      layer — the typed audit event stream, windowed metrics, and the
      online misbehaviour detector.
    - {!Proto}: Table 1 message types, wire-size model, node identity.
    - {!Dad}: secure duplicate address detection (§3.1).
    - {!Dns} / {!Dns_client}: the DNS server and host-side services
      (§3.2).
    - {!Dsr} / {!Route_cache}: the plain DSR baseline.
    - {!Secure_routing} / {!Credit}: the paper's secure routing and
      credit management (§3.3-3.4).
    - {!Faults} / {!Resilience}: deterministic fault injection (node
      churn, link flaps, partitions, bursty channels) and recovery
      metrics.
    - {!Merge} / {!Sweep}: deterministic merging of per-run exports
      and the multicore E1/E6 parameter-sweep runner (fanned across
      domains via {!Sim}[.Parallel]).
    - {!Adversary}: the §4 attack behaviours.
    - {!Aodv} / {!Aodv_adversary} / {!Aodv_world}: the AODV and
      SAODV-style comparison substrate (the paper's "other routing
      protocols" future work).
    - {!Scenario}: whole-network orchestration for experiments and
      examples. *)

module Crypto = Manet_crypto
module Ipv6 = Manet_ipv6
module Sim = Manet_sim
module Obs = Manet_obs.Obs
module Obs_json = Manet_obs.Json
module Obs_report = Manet_obs.Report
module Perf = Manet_obs.Perf
module Timeline = Manet_obs.Timeline
module Flood = Manet_obs.Flood
module Merge = Manet_obs.Merge
module Audit = Manet_obs.Audit
module Metrics = Manet_obs.Metrics
module Detector = Manet_obs.Detector
module Proto = Manet_proto
module Dad = Manet_dad.Dad
module Dns = Manet_dns.Dns
module Dns_client = Manet_dns.Client
module Dsr = Manet_dsr.Dsr
module Route_cache = Manet_dsr.Route_cache
module Secure_routing = Manet_secure.Secure_routing
module Credit = Manet_secure.Credit
module Srp = Manet_secure.Srp
module Faults = Manet_faults.Faults
module Resilience = Manet_faults.Resilience
module Adversary = Manet_attacks.Adversary
module Aodv = Manet_aodv.Aodv
module Aodv_adversary = Manet_attacks.Aodv_adversary
module Aodv_world = Manet_attacks.Aodv_world
module Scenario = Scenario
module Sweep = Sweep
