(** A self-contained AODV / SAODV network, for the E7 comparison and the
    AODV tests.  Mirrors what {!Manetsec.Scenario} does for the DSR
    protocols: topology, radio, identities, one agent per node, optional
    black holes, CBR traffic and metric readers. *)

module Address = Manet_ipv6.Address
module Engine = Manet_sim.Engine
module Topology = Manet_sim.Topology

type params = {
  n : int;
  seed : int;
  range : float;
  loss : float;
  secure : bool;  (** SAODV on/off *)
  topology : [ `Chain of float | `Grid of int * float | `Random of float * float ];
  adversaries : (int * Aodv_adversary.behavior) list;
  config : Manet_aodv.Aodv.config;
}

val default_params : params

type t

val create : params -> t

(* manetsem: allow dead-export — public API: engine accessor kept for
   parity with Scenario.engine. *)
val engine : t -> Engine.t
val stats : t -> Manet_sim.Stats.t
val agent : t -> int -> Manet_aodv.Aodv.t
val address_of : t -> int -> Address.t

val send : t -> src:int -> dst:int -> ?size:int -> unit -> unit

val start_cbr :
  t -> flows:(int * int) list -> interval:float -> ?size:int -> duration:float ->
  unit -> unit

val run : ?until:float -> t -> unit
val delivery_ratio : t -> float
