module Prng = Manet_crypto.Prng

type profile_entry = { p_count : int; p_wall_s : float }

type prof_cell = { mutable c_count : int; mutable c_wall_s : float }

(* Label-keyed side tables use a monomorphic string hash: the generic
   [Hashtbl] would hash and compare labels through the polymorphic
   primitives on every processed event. *)
module Stbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = String.hash
end)

(* The occupancy series decimates itself to stay bounded: samples are
   taken every [occ_stride] processed events, and when the buffer would
   exceed [occ_capacity] every other sample is dropped and the stride
   doubles.  Both operations depend only on the processed-event count,
   so the series is a pure function of the run — byte-identical across
   replays and domain counts.  Samples live in two parallel int arrays
   (index, pending) so sampling allocates nothing. *)
let occ_capacity = 512

type t = {
  mutable now : float;
  queue : (string, unit -> unit) Heap.t;
  rng : Prng.t;
  stats : Stats.t;
  trace : Trace.t;
  mutable processed : int;
  (* Deterministic perf accounting (always on): per-label processed
     event counts, queue high-water mark, and the sampled occupancy
     series.  All are pure functions of the event sequence — they read
     no clock and draw no randomness — so keeping them on costs a few
     table updates per event and perturbs nothing. *)
  counts : int ref Stbl.t;
  mutable max_pending : int;
  occ_idx : int array; (* processed index of sample i, oldest first *)
  occ_pend : int array; (* pending depth of sample i *)
  mutable occ_len : int;
  mutable occ_stride : int;
  (* Wall-clock profiling (opt-in).  Lives entirely outside the
     deterministic domain: enabling it changes no event order, no PRNG
     draw and no trace byte. *)
  mutable profiling : bool;
  prof : prof_cell Stbl.t;
  mutable wall_in_run : float;
  (* Per-event observer (opt-in), called with the event's timestamp
     immediately after the clock advances and before the event is
     counted or run.  The timeline layer hangs its bucket boundaries
     here; the hook itself must allocate nothing per event. *)
  mutable on_event : (float -> unit) option;
}

let create ~seed () =
  {
    now = 0.0;
    queue = Heap.create ();
    rng = Prng.create ~seed;
    stats = Stats.create ();
    trace = Trace.create ();
    processed = 0;
    counts = Stbl.create 32;
    max_pending = 0;
    occ_idx = Array.make (occ_capacity + 1) 0;
    occ_pend = Array.make (occ_capacity + 1) 0;
    occ_len = 0;
    occ_stride = 1;
    profiling = false;
    prof = Stbl.create 32;
    wall_in_run = 0.0;
    on_event = None;
  }

let now t = t.now
let rng t = t.rng
let stats t = t.stats
let trace t = t.trace

let default_label = "other"

let note_push t =
  let depth = Heap.size t.queue in
  if depth > t.max_pending then t.max_pending <- depth

let schedule t ?(label = default_label) ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Heap.push t.queue (t.now +. delay) label f;
  note_push t

let schedule_at t ?(label = default_label) ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.queue time label f;
  note_push t

let count_label t label =
  match Stbl.find t.counts label with
  | r -> incr r
  | exception Not_found ->
      (* manethot: allow hot-alloc — one ref per distinct label over the
         whole run, not per event. *)
      Stbl.add t.counts label (ref 1)

(* In-place decimation: keep samples whose processed index is a
   multiple of the doubled stride, preserving order.  Returns the new
   length. *)
let rec occ_compact t stride r w =
  if r >= t.occ_len then w
  else if t.occ_idx.(r) mod stride = 0 then begin
    t.occ_idx.(w) <- t.occ_idx.(r);
    t.occ_pend.(w) <- t.occ_pend.(r);
    occ_compact t stride (r + 1) (w + 1)
  end
  else occ_compact t stride (r + 1) w

let sample_occupancy t =
  if t.processed mod t.occ_stride = 0 then begin
    t.occ_idx.(t.occ_len) <- t.processed;
    t.occ_pend.(t.occ_len) <- Heap.size t.queue;
    t.occ_len <- t.occ_len + 1;
    if t.occ_len > occ_capacity then begin
      let stride = t.occ_stride * 2 in
      t.occ_stride <- stride;
      t.occ_len <- occ_compact t stride 0 0
    end
  end

let charge t label dt =
  let cell =
    match Stbl.find t.prof label with
    | c -> c
    | exception Not_found ->
        (* manethot: allow hot-alloc — one cell per distinct label over
           the whole profiled run, not per event. *)
        let c = { c_count = 0; c_wall_s = 0.0 } in
        Stbl.add t.prof label c;
        c
  in
  cell.c_count <- cell.c_count + 1;
  cell.c_wall_s <- cell.c_wall_s +. dt

(* The event loop proper, as a top-level tail recursion so a run
   allocates nothing of its own: the budget rides in an argument and
   the top entry is read field by field out of the SoA heap. *)
let rec run_loop t until budget =
  if budget > 0 && not (Heap.is_empty t.queue) then begin
    let time = Heap.min_prio t.queue in
    match until with
    | Some limit when time > limit ->
        (* Leave future events queued; advance the clock to the
           horizon so repeated bounded runs make progress. *)
        t.now <- limit
    | _ ->
        let label = Heap.min_fst t.queue in
        let f = Heap.min_snd t.queue in
        Heap.drop_min t.queue;
        t.now <- time;
        (match t.on_event with Some hook -> hook time | None -> ());
        t.processed <- t.processed + 1;
        count_label t label;
        sample_occupancy t;
        if t.profiling then begin
          let t0 = Mono_clock.now_s () in
          f ();
          charge t label (Mono_clock.now_s () -. t0)
        end
        else f ();
        run_loop t until (budget - 1)
  end

let run ?until ?max_events t =
  let run_t0 = if t.profiling then Mono_clock.now_s () else 0.0 in
  run_loop t until (match max_events with Some n -> n | None -> max_int);
  if t.profiling then
    t.wall_in_run <- t.wall_in_run +. (Mono_clock.now_s () -. run_t0)

let pending t = Heap.size t.queue
let events_processed t = t.processed

let label_counts t =
  Stbl.fold (fun label r acc -> (label, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let occupancy t =
  List.init t.occ_len (fun i -> (t.occ_idx.(i), t.occ_pend.(i)))

let occupancy_stride t = t.occ_stride
let max_pending t = t.max_pending

let set_profiling t on = t.profiling <- on
let profiling t = t.profiling
let set_on_event t hook = t.on_event <- hook

let profile t =
  Stbl.fold
    (fun label c acc ->
      (label, { p_count = c.c_count; p_wall_s = c.c_wall_s }) :: acc)
    t.prof []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let wall_in_run t = t.wall_in_run

let events_per_sec t =
  let profiled = Stbl.fold (fun _ c acc -> acc + c.c_count) t.prof 0 in
  if t.wall_in_run > 0.0 && profiled > 0 then
    float_of_int profiled /. t.wall_in_run
  else 0.0

let log t ~node ~event ~detail =
  Trace.log t.trace ~time:t.now ~node ~event ~detail
