(* B-series microbenchmarks (bechamel): the primitive costs underneath
   the protocol — hashing, signing, verification, CGA generation and
   checking, secure-route-record construction, and the event queue. *)

open Bechamel
open Toolkit
module Prng = Manetsec.Crypto.Prng
module Sha256 = Manetsec.Crypto.Sha256
module Rsa = Manetsec.Crypto.Rsa
module Suite = Manetsec.Crypto.Suite
module Cga = Manetsec.Ipv6.Cga
module Codec = Manetsec.Proto.Codec
module Heap = Manetsec.Sim.Heap

let tests () =
  let g = Prng.create ~seed:4242 in
  let data_1k = Prng.bytes g 1024 in
  let rsa_pub, rsa_priv = Rsa.generate g ~bits:512 in
  let signature = Rsa.sign rsa_priv data_1k in
  let mock = Suite.mock (Prng.create ~seed:17) in
  let mock_kp = mock.Suite.generate () in
  let mock_sig = mock_kp.Suite.sign data_1k in
  let pk_bytes = Rsa.public_key_to_bytes rsa_pub in
  let addr = Cga.generate ~pk_bytes ~rn:42L in
  let payload = Codec.srr_entry_payload ~iip:addr ~seq:7 in
  [
    Test.make ~name:"sha256 (1 KiB)" (Staged.stage (fun () -> Sha256.digest data_1k));
    Test.make ~name:"rsa512 sign" (Staged.stage (fun () -> Rsa.sign rsa_priv data_1k));
    (let module B = Manetsec.Crypto.Bignum in
     let gm = Prng.create ~seed:515 in
     let m =
       let v = B.random gm ~bits:512 in
       let v = B.add v (B.shift_left B.one 511) in
       if B.testbit v 0 then v else B.add v B.one
     in
     let base_v = B.random gm ~bits:500 in
     let e = B.random gm ~bits:512 in
     Test.make ~name:"modpow 512b (montgomery)"
       (Staged.stage (fun () -> B.mod_pow base_v e m)));
    (let module B = Manetsec.Crypto.Bignum in
     let gm = Prng.create ~seed:515 in
     let m =
       let v = B.random gm ~bits:512 in
       let v = B.add v (B.shift_left B.one 511) in
       if B.testbit v 0 then v else B.add v B.one
     in
     let base_v = B.random gm ~bits:500 in
     let e = B.random gm ~bits:512 in
     Test.make ~name:"modpow 512b (division)"
       (Staged.stage (fun () -> B.mod_pow_generic base_v e m)));
    Test.make ~name:"rsa512 sign (no CRT)"
      (Staged.stage (fun () -> Rsa.sign_no_crt rsa_priv data_1k));
    Test.make ~name:"rsa512 verify"
      (Staged.stage (fun () -> Rsa.verify rsa_pub ~msg:data_1k ~signature));
    Test.make ~name:"mock sign" (Staged.stage (fun () -> mock_kp.Suite.sign data_1k));
    Test.make ~name:"mock verify"
      (Staged.stage (fun () ->
           mock.Suite.verify ~pk_bytes:mock_kp.Suite.pk_bytes ~msg:data_1k
             ~signature:mock_sig));
    Test.make ~name:"cga generate" (Staged.stage (fun () -> Cga.generate ~pk_bytes ~rn:42L));
    Test.make ~name:"cga verify" (Staged.stage (fun () -> Cga.verify addr ~pk_bytes ~rn:42L));
    Test.make ~name:"srr hop sign+verify (rsa512)"
      (Staged.stage (fun () ->
           let s = Rsa.sign rsa_priv payload in
           Rsa.verify rsa_pub ~msg:payload ~signature:s));
    Test.make ~name:"event heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Heap.create () in
           for k = 1 to 100 do
             Heap.push h (float_of_int ((k * 37) mod 100)) () k
           done;
           let rec drain () =
             if not (Heap.is_empty h) then begin
               Heap.drop_min h;
               drain ()
             end
           in
           drain ()));
  ]

let run () =
  Util.heading "B -- microbenchmarks (bechamel, monotonic clock)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let grouped = Test.make_grouped ~name:"micro" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let per_run =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | _ -> nan
      in
      let pretty =
        if per_run > 1_000_000.0 then Printf.sprintf "%.3f ms" (per_run /. 1e6)
        else if per_run > 1_000.0 then Printf.sprintf "%.3f us" (per_run /. 1e3)
        else Printf.sprintf "%.1f ns" per_run
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := [ name; pretty; r2 ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Util.print_table ~header:[ "benchmark"; "time/run"; "r^2" ] rows
