(** The single keyword table of the scenario format (schema
    [manetsim-scenario] v1).

    Every keyword of the concrete grammar is a named constant here, and
    manetlint's [scenario-keyword] rule rejects keyword-shaped string
    literals anywhere else under [lib/scenario] — so this file {e is}
    the grammar's vocabulary, the same way [messages.mli] is the wire
    schema for the proto-schema rule. *)

val schema_name : string
(** ["manetsim-scenario"] — the value of the mandatory [(schema ...)]
    field. *)

val version : int
(** Current (and only) supported schema version. *)

(** {1 Toplevel and field keywords} *)

val kw_scenario : string
val kw_schema : string
val kw_name : string
val kw_seed : string
val kw_nodes : string
val kw_range : string
val kw_loss : string
val kw_promiscuous : string
val kw_protocol : string
val kw_suite : string
val kw_dns : string
val kw_topology : string
val kw_mobility : string
val kw_bootstrap : string
val kw_duration : string
val kw_run_until : string
val kw_traffic : string
val kw_adversaries : string
val kw_faults : string
val kw_exports : string

val fields : string list
(** Every legal field keyword of the [(scenario ...)] body, used for
    unknown-field diagnostics. *)

(** {1 Atoms} *)

val kw_true : string
val kw_false : string

(** {1 Protocol and crypto suite} *)

val kw_secure : string
val kw_dsr : string
val kw_srp : string
val protocols : string list
val kw_mock : string
val kw_rsa : string
val suites : string list

(** {1 Topology} *)

val kw_chain : string
val kw_grid : string
val kw_random : string
val kw_explicit : string
val topologies : string list
val kw_spacing : string
val kw_cols : string
val kw_width : string
val kw_height : string
val kw_node : string

(** {1 Mobility} *)

val kw_static : string
val kw_waypoint : string
val kw_walk : string
val mobilities : string list
val kw_min_speed : string
val kw_max_speed : string
val kw_pause : string
val kw_speed : string
val kw_turn_interval : string

(** {1 Bootstrap and traffic} *)

val kw_stagger : string
val kw_cbr : string
val kw_src : string
val kw_dst : string
val kw_interval : string
val kw_size : string
val kw_start : string

(** {1 Adversaries — the [lib/attacks] vocabulary} *)

val kw_blackhole : string
val kw_grayhole : string
val kw_replayer : string
val kw_rerr_spammer : string
val kw_identity_churner : string
val kw_sleeper : string
val adversary_kinds : string list
val kw_prob : string
val kw_every : string

(** {1 Faults — the [lib/faults] vocabulary} *)

val kw_crash : string
val kw_restart : string
val kw_outage : string
val kw_link_down : string
val kw_link_up : string
val kw_flap : string
val kw_partition : string
val kw_degrade : string
val kw_churn : string
val fault_kinds : string list
val kw_at : string
val kw_from : string
val kw_until : string
val kw_period : string
val kw_loss_good : string
val kw_loss_bad : string
val kw_p_good_to_bad : string
val kw_p_bad_to_good : string
val kw_horizon : string
val kw_mean_up : string
val kw_mean_down : string

(** {1 Exports} *)

val kw_stats_csv : string
val kw_audit_jsonl : string
val kw_trace_jsonl : string
val kw_metrics_csv : string
val kw_metrics_prom : string
val kw_report_json : string
val export_kinds : string list

(** {1 Merged-stream names (sweep exports)} *)

val stream_audit : string
val stream_trace : string
val stream_perf : string
val stream_timeline : string
