(** Secure duplicate address detection — §3.1 of the paper.

    The agent integrates extended DAD (AREQ flooded through the MANET,
    AREP returned by any node owning the contested address) with CGA
    ownership proofs and 6DNAR domain-name registration:

    - To join, a host broadcasts [AREQ(SIP, seq, DN, ch, RR)] with its
      tentative CGA; every host rebroadcasts once, appending its own
      address to the route record [RR].
    - A host [R] owning [SIP] answers with
      [AREP(SIP, RR, \[SIP, ch\]_RSK, RPK, Rrn)] unicast back along the
      reverse of [RR]; the initiator verifies the CGA binding
      ([SIP = fec0::H(RPK, Rrn)]) and the challenge signature, then picks
      a fresh [rn] and retries.
    - [R] also warns the DNS server with the same signed AREP so the
      pending name registration is cancelled.  The paper leaves the
      transport of this warning unspecified (R need not have a route to
      the DNS yet); we flood it addressed to the well-known DNS address,
      with duplicate suppression — see DESIGN.md §4.
    - If the DNS server sees a conflicting domain name it answers
      [DREP(SIP, RR, \[DN, ch\]_NSK)], which the initiator verifies under
      the pre-distributed DNS public key.
    - Silence for [arep_wait] seconds means the address (and name) are
      unique and usable.

    The agent handles AREQ/AREP/DREP for both roles (initiator and
    responder/relay).  DNS-server-side registration bookkeeping lives in
    [Manet_dns]; it observes AREQs and consumes warning AREPs through the
    two hooks below. *)

module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages

type config = {
  arep_wait : float;  (** seconds of silence that mean success *)
  flood_jitter : float;  (** max extra delay before rebroadcasting an AREQ *)
  max_attempts : int;  (** address regenerations before giving up *)
  auto_rename : bool;  (** derive "name-2" etc. on a DN conflict *)
}

val default_config : config

type outcome =
  | Configured of { address : Address.t; name : string option }
  | Failed of string

type t

val create :
  ?config:config ->
  ?dns_address:Address.t ->
  dns_pk:string ->
  Manet_proto.Node_ctx.t ->
  t
(** [dns_pk] is the DNS server's public key, which §3 assumes every host
    received before entering the MANET. *)

val start :
  t -> ?dn:string -> ?parent:int -> on_complete:(outcome -> unit) -> unit -> unit
(** Begin DAD for this node's current tentative address.  The tentative
    address is entered in the directory immediately (standing in for the
    footnote-2 last-hop broadcast: a node without a legal address can
    still hear its own AREP).

    Opens a [dad.bootstrap] telemetry span covering the whole exchange,
    with one [dad.flood] child per attempt.  [parent] links the span to
    a cause on another layer — a restart after an outage passes the
    [fault.outage] span id so re-DAD convergence is measurable
    separately from cold-start convergence. *)

val abort : t -> unit
(** Cancel any in-flight DAD attempt without firing its completion
    callback.  No-op when nothing is pending.  Used when a node crashes
    mid-bootstrap so that a later restart can call {!start} again. *)

val handle : t -> src:int -> Messages.t -> unit
(** Feed AREQ, AREP and DREP messages received by this node.  Other
    message kinds are ignored. *)

val is_configured : t -> bool

(* manetsem: allow dead-export — uniform agent accessor; every protocol
   agent (Dad, Dsr, Srp, Secure_routing) exposes [address]. *)
val address : t -> Address.t

val set_areq_observer : t -> (Messages.t -> unit) -> unit
(** DNS-server hook: called once per fresh (deduplicated) AREQ this node
    receives, before relaying. *)

val set_warning_sink : t -> (Messages.t -> unit) -> unit
(** DNS-server hook: called when an AREP terminates at this node but no
    local DAD is pending — i.e. this node is the DNS and the AREP is a
    duplicate warning. *)

(** {1 Telemetry correlation keys}

    Shared vocabulary for the {!Manet_obs.Obs} correlation registry, so
    responder- and DNS-side spans can attach to the initiating flood's
    span.  A flood attempt is identified by (sip, ch) — the 64-bit
    challenge is fresh per attempt — and AREP/DREP replies by their
    signature bytes. *)

val flood_key : sip:Address.t -> ch:int64 -> string
val drep_corr : string -> string
