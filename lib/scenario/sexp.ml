type pos = { line : int; col : int }

type t =
  | Atom of pos * string
  | List of pos * t list

exception Parse_error of { pos : pos; msg : string }

let pos_of = function Atom (p, _) -> p | List (p, _) -> p

type cursor = {
  text : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (* offset of the current line's first byte *)
}

let cur_pos c = { line = c.line; col = c.off - c.bol + 1 }

let fail_at pos msg = raise (Parse_error { pos; msg })
let fail c msg = fail_at (cur_pos c) msg

let peek c =
  if c.off < String.length c.text then Some c.text.[c.off] else None

let advance c =
  (match peek c with
  | Some '\n' ->
      c.line <- c.line + 1;
      c.bol <- c.off + 1
  | _ -> ());
  c.off <- c.off + 1

let is_ws ch = ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r'

(* An atom ends at whitespace, a bracket, a quote or a comment. *)
let is_atom_char ch =
  not (is_ws ch) && ch <> '(' && ch <> ')' && ch <> '"' && ch <> ';'

let rec skip_blanks c =
  match peek c with
  | Some ch when is_ws ch ->
      advance c;
      skip_blanks c
  | Some ';' ->
      let rec to_eol () =
        match peek c with
        | Some '\n' | None -> ()
        | Some _ ->
            advance c;
            to_eol ()
      in
      to_eol ();
      skip_blanks c
  | _ -> ()

let quoted_atom c =
  let start = cur_pos c in
  advance c (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail_at start "unterminated quoted atom"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail_at start "unterminated quoted atom"
        | Some esc ->
            advance c;
            (match esc with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | _ -> fail c (Printf.sprintf "unknown escape \\%c in quoted atom" esc));
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Atom (start, Buffer.contents buf)

let bare_atom c =
  let start = cur_pos c in
  let from = c.off in
  while (match peek c with Some ch -> is_atom_char ch | None -> false) do
    advance c
  done;
  Atom (start, String.sub c.text from (c.off - from))

let rec form c =
  skip_blanks c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '(' ->
      let start = cur_pos c in
      advance c;
      let items = ref [] in
      let rec elements () =
        skip_blanks c;
        match peek c with
        | None ->
            fail_at start "unclosed parenthesis: no matching closing parenthesis"
        | Some ')' -> advance c
        | Some _ ->
            items := form c :: !items;
            elements ()
      in
      elements ();
      List (start, List.rev !items)
  | Some ')' -> fail c "unmatched closing parenthesis"
  | Some '"' -> quoted_atom c
  | Some _ -> bare_atom c

let parse text =
  let c = { text; off = 0; line = 1; bol = 0 } in
  let forms = ref [] in
  let rec go () =
    skip_blanks c;
    if peek c <> None then begin
      forms := form c :: !forms;
      go ()
    end
  in
  go ();
  List.rev !forms
